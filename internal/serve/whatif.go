package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"

	"actorprof/internal/core"
	"actorprof/internal/sim"
	"actorprof/internal/whatif"
)

// scheduleFor returns a run's recorded what-if schedule, loaded once
// per directory fingerprint (the fingerprint covers schedule.json, so
// a rewritten run invalidates the cache automatically). Runs without a
// schedule 404.
func (r *registry) scheduleFor(id string) (*sim.Schedule, error) {
	dir, e, err := r.entry(id)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	fp, _, err := r.freshFP(dir, e)
	if err != nil {
		return nil, err
	}
	if e.schedFP != fp {
		sched, err := whatif.ReadScheduleFile(dir)
		switch {
		case errors.Is(err, os.ErrNotExist):
			sched = nil
		case err != nil:
			return nil, err
		}
		e.sched, e.schedFP = sched, fp
	}
	if e.sched == nil {
		return nil, noData("run %s has no recorded schedule (%s); capture one with core.RunCaptured", id, whatif.ScheduleFileName)
	}
	return e.sched, nil
}

// whatifQuery is the parsed, normalized perturbation request.
type whatifQuery struct {
	scales  whatif.CostScales
	actor   int64
	speedup float64
	plot    string // "report", "compare", "bottleneck"
	format  string // "json", "svg"
}

func scaleParam(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil // unset = unchanged
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, statusError{code: 400, msg: fmt.Sprintf("%s must be a positive finite number, got %q", name, raw)}
	}
	return v, nil
}

func whatifParams(r *http.Request) (whatifQuery, error) {
	var q whatifQuery
	var err error
	for name, dst := range map[string]*float64{
		"scale_network": &q.scales.Network,
		"scale_local":   &q.scales.Local,
		"scale_quiet":   &q.scales.Quiet,
		"scale_instr":   &q.scales.Instr,
		"scale_ingest":  &q.scales.Ingest,
		"speedup":       &q.speedup,
	} {
		if *dst, err = scaleParam(r, name); err != nil {
			return q, err
		}
	}
	if raw := r.URL.Query().Get("actor"); raw != "" {
		q.actor, err = strconv.ParseInt(raw, 10, 64)
		if err != nil || q.actor < 0 {
			return q, statusError{code: 400, msg: fmt.Sprintf("actor must be a non-negative actor ID, got %q", raw)}
		}
	}
	if q.speedup > 0 && r.URL.Query().Get("actor") == "" {
		return q, statusError{code: 400, msg: "speedup requires actor=<id> to name the handler to speed up"}
	}
	q.plot = r.URL.Query().Get("plot")
	switch q.plot {
	case "":
		q.plot = "report"
	case "report", "compare", "bottleneck":
	default:
		return q, statusError{code: 400, msg: fmt.Sprintf("plot must be report, compare, or bottleneck, got %q", q.plot)}
	}
	q.format = r.URL.Query().Get("format")
	switch q.format {
	case "":
		q.format = "json"
	case "json":
	case "svg":
		if q.plot == "report" {
			return q, statusError{code: 400, msg: "format=svg requires plot=compare or plot=bottleneck"}
		}
	default:
		return q, statusError{code: 400, msg: fmt.Sprintf("format must be json or svg, got %q", q.format)}
	}
	return q, nil
}

func (q whatifQuery) norm() string {
	return fmt.Sprintf("%g\x01%g\x01%g\x01%g\x01%g\x01%d\x01%g\x01%s\x01%s",
		q.scales.Network, q.scales.Local, q.scales.Quiet, q.scales.Instr, q.scales.Ingest,
		q.actor, q.speedup, q.plot, q.format)
}

func (q whatifQuery) title() string {
	var parts []string
	add := func(name string, f float64) {
		if f > 0 && f != 1 {
			parts = append(parts, fmt.Sprintf("%s x%g", name, f))
		}
	}
	add("network", q.scales.Network)
	add("local", q.scales.Local)
	add("quiet", q.scales.Quiet)
	add("instr", q.scales.Instr)
	add("ingest", q.scales.Ingest)
	if q.speedup > 0 {
		ord, mb := sim.ActorIDParts(q.actor)
		parts = append(parts, fmt.Sprintf("s%d/m%d handler %gx faster", ord, mb, q.speedup))
	}
	if len(parts) == 0 {
		return "what-if: baseline (no perturbation)"
	}
	return "what-if: " + strings.Join(parts, ", ")
}

// handleWhatIf serves /runs/{run}/whatif: the causal projection of a
// cost-model/handler perturbation over the run's recorded schedule,
// differentially validated against a deterministic replay on every
// render (then cached per fingerprint+query, ETagged and gzipped like
// every other artifact). format=json returns the full whatif.Report;
// plot=compare|bottleneck with format=svg return the rendered figures.
func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	runID := r.PathValue("run")
	q, err := whatifParams(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	fp, err := s.reg.fingerprintFor(runID)
	if err != nil {
		s.fail(w, err)
		return
	}
	norm := q.norm()
	key := strings.Join([]string{runID, fp, "whatif", norm}, "\x00")
	s.serveArtifact(w, r, key, etagFor(runID, fp, "whatif", norm), func() (renderResult, error) {
		sched, err := s.reg.scheduleFor(runID)
		if err != nil {
			return renderResult{}, err
		}
		pert := whatif.Perturbation{Cost: whatif.ScaledCost(sched.Cost, q.scales)}
		if q.speedup > 0 {
			pert.HandlerSpeedup = map[int64]float64{q.actor: q.speedup}
		}
		if err := pert.Validate(); err != nil {
			return renderResult{}, statusError{code: 400, msg: err.Error()}
		}
		rep, err := core.WhatIf(sched, pert)
		if err != nil {
			return renderResult{}, err
		}
		var data []byte
		contentType := "application/json"
		switch {
		case q.format == "json" && q.plot == "report":
			if data, err = json.Marshal(rep); err != nil {
				return renderResult{}, err
			}
		default:
			var plot interface {
				RenderSVG() (string, error)
			}
			if q.plot == "compare" {
				plot = core.WhatIfPlot(rep, q.title())
			} else {
				plot = core.BottleneckPlot(rep.Projected, 12, "bottleneck ranking (projected)")
			}
			if q.format == "json" {
				if data, err = json.Marshal(plot); err != nil {
					return renderResult{}, err
				}
			} else {
				svg, err := plot.RenderSVG()
				if err != nil {
					return renderResult{}, err
				}
				data, contentType = []byte(svg), "image/svg+xml"
			}
		}
		return withGzip(renderResult{data: data, contentType: contentType}, s.cfg.GzipMinBytes), nil
	})
}
