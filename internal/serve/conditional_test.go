package serve

import (
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// getH issues a request with extra headers (and an arbitrary method)
// through the handler.
func getH(t *testing.T, h http.Handler, method, path string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest(method, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

// TestConditionalRequests is the ETag/If-None-Match and gzip
// negotiation contract, as a table over one served plot.
func TestConditionalRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	const path = "/runs/run1/plots/logical-heatmap.svg"

	// Prime: the unconditional response carries the validator.
	first, identityBody := getH(t, h, "GET", path, nil)
	etag := first.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("unconditional GET returned no quoted ETag: %q", etag)
	}
	gzETag := `"` + strings.Trim(etag, `"`) + `-gz"`

	cases := []struct {
		name     string
		method   string
		hdr      map[string]string
		wantCode int
		wantBody string // "identity", "gzip", "empty", or "" (don't check)
	}{
		{"no conditions is 200", "GET", nil, 200, "identity"},
		{"matching etag is 304", "GET", map[string]string{"If-None-Match": etag}, 304, "empty"},
		{"wildcard is 304", "GET", map[string]string{"If-None-Match": "*"}, 304, "empty"},
		{"weak-form etag matches", "GET", map[string]string{"If-None-Match": "W/" + etag}, 304, "empty"},
		{"etag inside a list matches", "GET", map[string]string{"If-None-Match": `"zzz", ` + etag + `, "yyy"`}, 304, "empty"},
		{"gzip-variant etag matches", "GET", map[string]string{"If-None-Match": gzETag}, 304, "empty"},
		{"stale etag re-serves 200", "GET", map[string]string{"If-None-Match": `"0000000000000000"`}, 200, "identity"},
		{"accept gzip gets gzip", "GET", map[string]string{"Accept-Encoding": "gzip"}, 200, "gzip"},
		{"accept anything gets gzip", "GET", map[string]string{"Accept-Encoding": "*"}, 200, "gzip"},
		{"gzip at q=0 stays identity", "GET", map[string]string{"Accept-Encoding": "gzip;q=0"}, 200, "identity"},
		{"unknown coding stays identity", "GET", map[string]string{"Accept-Encoding": "br"}, 200, "identity"},
		{"HEAD has headers, no body", "HEAD", nil, 200, "empty"},
		{"HEAD revalidates to 304", "HEAD", map[string]string{"If-None-Match": etag}, 304, "empty"},
		{"gzip 304 still has no body", "GET", map[string]string{"Accept-Encoding": "gzip", "If-None-Match": etag}, 304, "empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, body := getH(t, h, tc.method, path, tc.hdr)
			if res.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d", res.StatusCode, tc.wantCode)
			}
			if v := res.Header.Get("Vary"); v != "Accept-Encoding" {
				t.Errorf("Vary = %q, want Accept-Encoding", v)
			}
			switch tc.wantBody {
			case "identity":
				if body != identityBody {
					t.Errorf("body differs from the identity representation")
				}
				if enc := res.Header.Get("Content-Encoding"); enc != "" {
					t.Errorf("Content-Encoding = %q, want none", enc)
				}
				if res.Header.Get("ETag") != etag {
					t.Errorf("ETag = %q, want %q", res.Header.Get("ETag"), etag)
				}
			case "gzip":
				if enc := res.Header.Get("Content-Encoding"); enc != "gzip" {
					t.Fatalf("Content-Encoding = %q, want gzip", enc)
				}
				if got := res.Header.Get("ETag"); got != gzETag {
					t.Errorf("gzip ETag = %q, want %q", got, gzETag)
				}
				if cl := res.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
					t.Errorf("Content-Length = %q, body is %d bytes", cl, len(body))
				}
				if len(body) >= len(identityBody) {
					t.Errorf("gzip body (%d bytes) is not smaller than identity (%d)", len(body), len(identityBody))
				}
				zr, err := gzip.NewReader(strings.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				plain, err := io.ReadAll(zr)
				if err != nil {
					t.Fatal(err)
				}
				if string(plain) != identityBody {
					t.Errorf("gzip body does not decompress to the identity bytes")
				}
			case "empty":
				if body != "" {
					t.Errorf("body = %d bytes, want empty", len(body))
				}
			}
			if tc.method == "HEAD" && tc.wantCode == 200 {
				if cl := res.Header.Get("Content-Length"); cl != strconv.Itoa(len(identityBody)) {
					t.Errorf("HEAD Content-Length = %q, want %d", cl, len(identityBody))
				}
			}
		})
	}

	if nm := srv.Metrics().NotModified(); nm != 7 {
		t.Errorf("not-modified counter = %d, want 7 (one per 304 case)", nm)
	}
}

// TestETagStableAcrossIdenticalRenders: the validator is derived from
// the run's fingerprint, so re-rendering identical content (e.g. after
// an eviction) keeps the same ETag - including across server restarts
// over the same directory.
func TestETagStableAcrossIdenticalRenders(t *testing.T) {
	root := t.TempDir()
	writeRun(t, root, "run1")
	const path = "/runs/run1/plots/overall-absolute.json"
	var etags []string
	for i := 0; i < 2; i++ {
		srv, err := New(Config{Root: root})
		if err != nil {
			t.Fatal(err)
		}
		res, _ := getH(t, srv.Handler(), "GET", path, nil)
		etags = append(etags, res.Header.Get("ETag"))
	}
	if etags[0] == "" || etags[0] != etags[1] {
		t.Errorf("ETag not stable across identical renders: %q vs %q", etags[0], etags[1])
	}
}

// TestETagChangesOnLiveIngest: a write into the trace directory changes
// the fingerprint, so a held ETag stops matching and the client gets
// fresh bytes with a fresh validator - the no-invalidation-protocol
// contract extended to conditional requests.
func TestETagChangesOnLiveIngest(t *testing.T) {
	root := t.TempDir()
	writeMiniRun(t, root, "live", 0)
	srv, err := New(Config{Root: root, SnapshotTTL: -1})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	const path = "/runs/live/plots/logical-heatmap.json"

	res, _ := getH(t, h, "GET", path, nil)
	etag := res.Header.Get("ETag")
	if res2, _ := getH(t, h, "GET", path, map[string]string{"If-None-Match": etag}); res2.StatusCode != 304 {
		t.Fatalf("unchanged run revalidation = %d, want 304", res2.StatusCode)
	}

	// More records land in the directory (a live flush).
	f, err := os.OpenFile(filepath.Join(root, "live", "PE0_send.csv"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("1,0,0,1,64\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	res3, _ := getH(t, h, "GET", path, map[string]string{"If-None-Match": etag})
	if res3.StatusCode != 200 {
		t.Fatalf("post-ingest revalidation = %d, want 200 (fingerprint changed)", res3.StatusCode)
	}
	if newTag := res3.Header.Get("ETag"); newTag == etag || newTag == "" {
		t.Errorf("post-ingest ETag %q did not change from %q", newTag, etag)
	}
}

// TestParamNormalizedInETag: irrelevant query parameters affect neither
// the cache key nor the validator.
func TestParamNormalizedInETag(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	res1, _ := getH(t, h, "GET", "/runs/run1/plots/logical-heatmap.svg", nil)
	res2, _ := getH(t, h, "GET", "/runs/run1/plots/logical-heatmap.svg?event=ignored", nil)
	if res1.Header.Get("ETag") != res2.Header.Get("ETag") {
		t.Errorf("irrelevant param changed ETag: %q vs %q", res1.Header.Get("ETag"), res2.Header.Get("ETag"))
	}
	// papi-bar consumes the parameter: distinct events, distinct tags.
	res3, _ := getH(t, h, "GET", "/runs/run1/plots/papi-bar.svg?event=PAPI_TOT_INS", nil)
	res4, _ := getH(t, h, "GET", "/runs/run1/plots/papi-bar.svg?event=PAPI_LST_INS", nil)
	if res3.Header.Get("ETag") == res4.Header.Get("ETag") {
		t.Errorf("distinct papi-bar events share an ETag: %q", res3.Header.Get("ETag"))
	}
}

// TestGzipSkippedForSmallOrIncompressible: a server with a huge
// GzipMinBytes never compresses, even for willing clients.
func TestGzipSkippedForSmallOrIncompressible(t *testing.T) {
	root := t.TempDir()
	writeRun(t, root, "run1")
	srv, err := New(Config{Root: root, GzipMinBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := getH(t, srv.Handler(), "GET", "/runs/run1/plots/logical-heatmap.svg",
		map[string]string{"Accept-Encoding": "gzip"})
	if enc := res.Header.Get("Content-Encoding"); enc != "" {
		t.Errorf("Content-Encoding = %q, want identity below the gzip threshold", enc)
	}
	if res.StatusCode != 200 {
		t.Errorf("status = %d", res.StatusCode)
	}
}
