package serve

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"actorprof/internal/trace"
)

// writeIndexedRun writes a binary physical run named id under root with
// every record carrying a virtual-clock timestamp, then builds its time
// index, so the daemon's windowed queries take the indexed O(window)
// path. Cycles are laid out PE-major (pe*recsPerPE + i + 1), giving the
// APBF blocks disjoint, ordered time spans.
func writeIndexedRun(t testing.TB, root, id string, npes, recsPerPE int) string {
	t.Helper()
	s := trace.NewSet(trace.Config{Physical: true, Format: trace.FormatBinary}, npes, 2)
	for pe := 0; pe < npes; pe++ {
		for i := 0; i < recsPerPE; i++ {
			s.Physical[pe] = append(s.Physical[pe], trace.PhysicalRecord{
				Kind: 1, BufBytes: 64 + i%32, SrcPE: pe, DstPE: (pe + 1) % npes,
				Cycles: int64(pe*recsPerPE+i) + 1,
			})
		}
	}
	dir := filepath.Join(root, id)
	if err := s.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	if built, err := trace.BuildTimeIndex(dir); err != nil || !built {
		t.Fatalf("BuildTimeIndex: built=%v err=%v", built, err)
	}
	return dir
}

// getHdr is get with request headers.
func getHdr(t *testing.T, h http.Handler, path string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, body
}

// TestWindowedEventsEndpoint drives /events end to end against an
// indexed run: the JSON answer must match the query engine exactly, a
// narrow window must touch only its blocks (the O(window) property,
// observed at the HTTP layer through blocks_read), LOD queries must
// read no blocks at all, the window metrics must add up, and repeats
// must come from the cache without re-querying.
func TestWindowedEventsEndpoint(t *testing.T) {
	root := t.TempDir()
	const npes, recsPerPE = 8, 2048 // 16384 rows = 16 blocks
	dir := writeIndexedRun(t, root, "ix", npes, recsPerPE)
	srv, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	// Full-span raw query: every block read, nothing truncated.
	res, body := get(t, h, "/runs/ix/events")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/events: %d (%s)", res.StatusCode, body)
	}
	var full trace.WindowResult
	if err := json.Unmarshal([]byte(body), &full); err != nil {
		t.Fatal(err)
	}
	if full.DomainName != "cycles" {
		t.Errorf("domain = %q, want cycles", full.DomainName)
	}
	if full.FullScan {
		t.Error("indexed run answered with a full scan")
	}
	if full.TotalBlocks != 16 || full.BlocksRead != 16 {
		t.Errorf("full span read %d/%d blocks, want 16/16", full.BlocksRead, full.TotalBlocks)
	}
	if len(full.Events) != npes*recsPerPE {
		t.Errorf("full span returned %d events, want %d", len(full.Events), npes*recsPerPE)
	}

	// Narrow window: the response must match the engine byte for byte
	// and touch only the intersecting blocks.
	q := trace.Window{T0: 3000, T1: 3500, MaxEvents: serverMaxEvents}
	want, err := trace.QueryWindow(dir, q)
	if err != nil {
		t.Fatal(err)
	}
	res, narrowBody := get(t, h, "/runs/ix/events?t0=3000&t1=3500")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("narrow /events: %d (%s)", res.StatusCode, narrowBody)
	}
	var got trace.WindowResult
	if err := json.Unmarshal([]byte(narrowBody), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, want.Events) {
		t.Fatalf("HTTP events differ from engine: %d vs %d", len(got.Events), len(want.Events))
	}
	if got.BlocksRead >= got.TotalBlocks {
		t.Errorf("narrow window read %d of %d blocks; want a proper subset", got.BlocksRead, got.TotalBlocks)
	}
	if got.BlocksRead != want.BlocksRead {
		t.Errorf("HTTP blocks_read = %d, engine = %d", got.BlocksRead, want.BlocksRead)
	}

	// LOD query: pyramid only, zero data blocks.
	res, body = get(t, h, "/runs/ix/events?lod=2")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("lod /events: %d (%s)", res.StatusCode, body)
	}
	var lod trace.WindowResult
	if err := json.Unmarshal([]byte(body), &lod); err != nil {
		t.Fatal(err)
	}
	if lod.LOD < 1 || len(lod.Buckets) == 0 {
		t.Errorf("lod=2 returned lod=%d with %d buckets", lod.LOD, len(lod.Buckets))
	}
	if lod.BlocksRead != 0 {
		t.Errorf("pyramid query read %d blocks, want 0", lod.BlocksRead)
	}

	// The window metrics account for exactly the three queries above.
	m := srv.Metrics()
	if n := m.WindowQueries(); n != 3 {
		t.Errorf("window queries = %d, want 3", n)
	}
	if n := m.WindowBlocksRead(); n != int64(16+got.BlocksRead) {
		t.Errorf("window blocks read = %d, want %d", n, 16+got.BlocksRead)
	}
	if n := m.WindowFullScans(); n != 0 {
		t.Errorf("window full scans = %d, want 0", n)
	}
	_, metricsBody := get(t, h, "/metrics")
	for _, want := range []string{
		"actorprofd_window_queries_total 3",
		"actorprofd_window_full_scans_total 0",
		"actorprofd_window_blocks_read_total",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// A repeat of the same window is a cache hit: no new query runs.
	res2, body2 := get(t, h, "/runs/ix/events?t0=3000&t1=3500")
	if res2.StatusCode != http.StatusOK || body2 != narrowBody {
		t.Errorf("repeated window returned different answer")
	}
	if n := m.WindowQueries(); n != 3 {
		t.Errorf("cache hit re-ran the query: %d queries", n)
	}

	// Equivalent parameter spellings share the entry too (normalization
	// happens before cache keying).
	get(t, h, "/runs/ix/events?t0=3000&t1=3500&lod=0&junk=1")
	if n := m.WindowQueries(); n != 3 {
		t.Errorf("equivalent params minted a new query: %d queries", n)
	}

	// Conditional revalidation: the ETag round-trips to a body-less 304.
	etag := res2.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on /events")
	}
	res3, body3 := getHdr(t, h, "/runs/ix/events?t0=3000&t1=3500", map[string]string{"If-None-Match": etag})
	if res3.StatusCode != http.StatusNotModified || len(body3) != 0 {
		t.Errorf("If-None-Match: status %d, %d body bytes; want 304 empty", res3.StatusCode, len(body3))
	}

	// Content negotiation: the big full-span answer compresses.
	res4, body4 := getHdr(t, h, "/runs/ix/events", map[string]string{"Accept-Encoding": "gzip"})
	if enc := res4.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("full-span response not gzipped (Content-Encoding %q)", enc)
	}
	zr, err := gzip.NewReader(strings.NewReader(string(body4)))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	var again trace.WindowResult
	if err := json.Unmarshal(plain, &again); err != nil {
		t.Fatalf("gunzipped /events is not valid JSON: %v", err)
	}
	if len(again.Events) != len(full.Events) {
		t.Errorf("gzip variant carries %d events, identity %d", len(again.Events), len(full.Events))
	}
}

// TestEventsFullScanFallback queries a CSV-format run (which cannot
// carry a time index): the endpoint must still answer - via the exact
// full-scan reference - and say so in both the payload and the metrics.
func TestEventsFullScanFallback(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	res, body := get(t, h, "/runs/run1/events?lod=1")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/events on CSV run: %d (%s)", res.StatusCode, body)
	}
	var got trace.WindowResult
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if !got.FullScan {
		t.Error("CSV run did not report full_scan")
	}
	if got.DomainName != "sequence" {
		t.Errorf("CSV reload domain = %q, want sequence", got.DomainName)
	}
	if n := srv.Metrics().WindowFullScans(); n != 1 {
		t.Errorf("window full scans = %d, want 1", n)
	}
}

// TestWindowParamErrors pins the hardening contract: garbage window
// parameters are a 400 with a message naming the parameter, and a
// missing run is a 404 - never a 500.
func TestWindowParamErrors(t *testing.T) {
	root := t.TempDir()
	writeIndexedRun(t, root, "ix", 2, 64)
	srv, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	cases := []struct {
		query string
		code  int
	}{
		{"?t0=abc", 400},
		{"?t1=1.5", 400},
		{"?t0=99999999999999999999999", 400},
		{"?t1=0x10", 400},
		{"?lod=-1", 400},
		{"?lod=abc", 400},
		{"?max_events=-3", 400},
		{"?max_events=1e9", 400},
		{"?t0=-5&t1=10&lod=64", 200},
		{"?t0=9223372036854775807", 200}, // extreme but valid: clamped, empty
		{"", 200},
	}
	for _, tc := range cases {
		res, body := get(t, h, "/runs/ix/events"+tc.query)
		if res.StatusCode != tc.code {
			t.Errorf("/events%s = %d, want %d (%s)", tc.query, res.StatusCode, tc.code, body)
		}
	}
	if res, _ := get(t, h, "/runs/nope/events"); res.StatusCode != http.StatusNotFound {
		t.Errorf("missing run: %d, want 404", res.StatusCode)
	}
}

// TestPerfettoEndpoint serves the full-model export over HTTP: a valid
// JSON object distinct from the legacy instant array, revalidating
// through the fingerprint ETag like every artifact.
func TestPerfettoEndpoint(t *testing.T) {
	root := t.TempDir()
	writeIndexedRun(t, root, "ix", 4, 300)
	srv, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	res, body := get(t, h, "/runs/ix/trace.perfetto.json")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("perfetto: %d (%s)", res.StatusCode, body)
	}
	if !strings.HasPrefix(body, `{"traceEvents":[`) {
		t.Fatalf("perfetto export does not open the traceEvents object: %.40q", body)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("perfetto endpoint returned invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 || doc.OtherData["clock_domain"] != "cycles" {
		t.Fatalf("perfetto document malformed: %d events, otherData %v", len(doc.TraceEvents), doc.OtherData)
	}
	_, legacy := get(t, h, "/runs/ix/trace-events.json")
	if legacy == body {
		t.Error("perfetto export identical to legacy instant export")
	}
	etag := res.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on perfetto export")
	}
	if res2, b2 := getHdr(t, h, "/runs/ix/trace.perfetto.json", map[string]string{"If-None-Match": etag}); res2.StatusCode != http.StatusNotModified || len(b2) != 0 {
		t.Errorf("perfetto If-None-Match: %d with %d body bytes, want 304 empty", res2.StatusCode, len(b2))
	}
}

// FuzzWindowParams hammers /events with arbitrary parameter strings:
// any input must yield a well-formed response below 500, and every 200
// must carry a valid WindowResult document.
func FuzzWindowParams(f *testing.F) {
	root := f.TempDir()
	writeIndexedRun(f, root, "ix", 4, 300)
	srv, err := New(Config{Root: root})
	if err != nil {
		f.Fatal(err)
	}
	h := srv.Handler()
	for _, seed := range [][4]string{
		{"", "", "", ""},
		{"0", "100", "0", "10"},
		{"-9223372036854775808", "9223372036854775807", "64", "50000"},
		{"abc", "1.5", "-1", "1e9"},
		{"99999999999999999999", "0x10", "999", "0"},
		{" 5", "5 ", "\x00", "∞"},
		{"100", "3", "2", ""}, // inverted window: empty, not an error
	} {
		f.Add(seed[0], seed[1], seed[2], seed[3])
	}
	f.Fuzz(func(t *testing.T, t0, t1, lod, maxEvents string) {
		q := url.Values{}
		for name, v := range map[string]string{"t0": t0, "t1": t1, "lod": lod, "max_events": maxEvents} {
			if v != "" {
				q.Set(name, v)
			}
		}
		req := httptest.NewRequest("GET", "/runs/ix/events?"+q.Encode(), nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("t0=%q t1=%q lod=%q max_events=%q: status %d", t0, t1, lod, maxEvents, rec.Code)
		}
		if rec.Code == 200 {
			var res trace.WindowResult
			if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
				t.Fatalf("t0=%q t1=%q: 200 with invalid JSON: %v", t0, t1, err)
			}
			if res.BlocksRead < 0 || res.BlocksRead > res.TotalBlocks {
				t.Fatalf("t0=%q t1=%q: blocks_read %d of %d", t0, t1, res.BlocksRead, res.TotalBlocks)
			}
		}
	})
}
