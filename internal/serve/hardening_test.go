package serve

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// writeMiniRun writes a minimal logical-only trace directory by hand:
// cheap enough to create hundreds of runs in a test, unlike writeRun
// which executes a full simulated app. The salt varies file contents so
// distinct runs have distinct fingerprints.
func writeMiniRun(t testing.TB, root, id string, salt int) {
	t.Helper()
	dir := filepath.Join(root, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"actorprof_meta.txt": "num_PEs 2\nPEs_per_node 2\nlogical_sample 1\n",
		"PE0_send.csv":       fmt.Sprintf("0,0,0,1,%d\n", 8+salt%7),
		"PE1_send.csv":       fmt.Sprintf("0,1,1,0,%d\n", 16+salt%5),
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotBoundsRegistryScans is the regression test for the
// per-request stat storm loadgen surfaced: before the snapshot, every
// plot request re-scanned the served root (ReadDir + one Stat per
// child) and re-fingerprinted the run directory (ReadDir + one Stat per
// file), so disk metadata traffic scaled O(requests x runs). With the
// snapshot window (Config.SnapshotTTL, default 500ms), a burst of
// requests inside one window performs a bounded number of scans and
// fingerprints no matter how many requests arrive.
func TestSnapshotBoundsRegistryScans(t *testing.T) {
	root := t.TempDir()
	for i := 0; i < 3; i++ {
		writeMiniRun(t, root, fmt.Sprintf("run%d", i), i)
	}
	srv, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	const requests = 50
	for i := 0; i < requests; i++ {
		path := fmt.Sprintf("/runs/run%d/plots/logical-heatmap.svg", i%3)
		if res, body := get(t, h, path); res.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d (%s)", path, res.StatusCode, body)
		}
	}
	for i := 0; i < 10; i++ {
		if res, _ := get(t, h, "/api/runs"); res.StatusCode != http.StatusOK {
			t.Fatalf("/api/runs: %d", res.StatusCode)
		}
	}
	m := srv.Metrics()
	// One scan fills the snapshot; allow a couple for TTL-boundary slop.
	if scans := m.RegistryScans(); scans > 3 {
		t.Errorf("registry scans = %d for %d requests, want <= 3 (snapshot should absorb the burst)", scans, requests+10)
	}
	// One fingerprint per run fills the window; allow one extra round.
	if fps := m.Fingerprints(); fps > 6 {
		t.Errorf("fingerprints = %d for %d requests over 3 runs, want <= 6", fps, requests+10)
	}
}

// TestIrrelevantParamSharesCacheEntry is the regression test for the
// cache-busting hole loadgen's adversarial scan mix surfaced: query
// parameters were embedded in the cache key for every plot kind, so
// /plots/logical-heatmap.svg?event=anything rendered and cached a
// separate identical copy per parameter value, letting a scanning
// client evict the hot set with one URL template. Only plot kinds that
// consume ?event= (papi-bar) may key on it.
func TestIrrelevantParamSharesCacheEntry(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	paths := []string{
		"/runs/run1/plots/logical-heatmap.svg",
		"/runs/run1/plots/logical-heatmap.svg?event=bust-0",
		"/runs/run1/plots/logical-heatmap.svg?event=bust-1&x=2",
	}
	var bodies []string
	for _, p := range paths {
		res, body := get(t, h, p)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", p, res.StatusCode)
		}
		bodies = append(bodies, body)
	}
	for i := 1; i < len(bodies); i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("request %d returned different bytes despite identical plot", i)
		}
	}
	m := srv.Metrics()
	if misses := m.CacheMisses(); misses != 1 {
		t.Errorf("cache misses = %d, want 1 (irrelevant params must share one cache entry)", misses)
	}
	// papi-bar genuinely consumes ?event=, so distinct events must stay
	// distinct entries.
	get(t, h, "/runs/run1/plots/papi-bar.svg?event=PAPI_TOT_INS")
	get(t, h, "/runs/run1/plots/papi-bar.svg?event=PAPI_LST_INS")
	if misses := m.CacheMisses(); misses != 3 {
		t.Errorf("cache misses = %d after two distinct papi-bar events, want 3", misses)
	}
}
