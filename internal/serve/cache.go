package serve

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"errors"
	"sync"
)

// renderResult is one rendered artifact: the identity bytes, an
// optional gzip-encoded variant (nil when compression is not
// worthwhile), and the content type both are served with.
type renderResult struct {
	data        []byte
	gz          []byte
	contentType string
}

// size is the entry's charge against the cache byte budget: both
// variants are cached together, so both count.
func (r renderResult) size() int64 { return int64(len(r.data) + len(r.gz)) }

// withGzip compresses res.data and attaches the gzip variant when the
// payload is large enough to matter and compression actually shrinks it
// by at least 10%. Called inside the render closure, so the compression
// cost is paid once per cache entry, not per response.
func withGzip(res renderResult, minBytes int) renderResult {
	if len(res.data) < minBytes {
		return res
	}
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	zw.Write(res.data)
	if err := zw.Close(); err != nil {
		return res
	}
	if buf.Len() >= len(res.data)*9/10 {
		return res
	}
	res.gz = buf.Bytes()
	return res
}

// flight tracks one in-progress render so that concurrent requests for
// the same artifact wait for it instead of rendering redundantly
// (single-flight de-duplication).
type flight struct {
	done chan struct{}
	res  renderResult
	err  error
}

// cache is a byte-budgeted, scan-resistant segmented LRU (SLRU) of
// rendered artifacts. Keys embed the source directory's fingerprint, so
// a changed (live) trace directory naturally misses and renders fresh
// bytes while the stale entry ages out; nothing needs explicit
// invalidation.
//
// Admission policy: a newly rendered entry enters the probationary
// segment; only an entry that is hit again is promoted to the protected
// segment (capped at 80% of the byte budget, demoting its own LRU tail
// back to probation when full). Eviction drains probation first and
// touches protection only when probation cannot yield the bytes. A
// one-shot scan - thousands of keys requested exactly once - therefore
// churns only the probationary 20% of the budget and cannot evict the
// promoted hot set, which is what keeps p99 flat under adversarial
// mixes (DESIGN.md §12).
type cache struct {
	maxBytes int64
	protMax  int64 // protected-segment byte cap (80% of maxBytes)
	metrics  *Metrics

	mu        sync.Mutex
	probBytes int64
	protBytes int64
	prob      *list.List // seen once; front = most recently used
	prot      *list.List // seen twice or more; front = most recently used
	items     map[string]*list.Element
	flights   map[string]*flight
}

type entry struct {
	key       string
	res       renderResult
	protected bool
}

func newCache(maxBytes int64, m *Metrics) *cache {
	return &cache{
		maxBytes: maxBytes,
		protMax:  maxBytes * 4 / 5,
		metrics:  m,
		prob:     list.New(),
		prot:     list.New(),
		items:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// getOrRender returns the cached artifact for key, or renders it.
// Concurrent calls with the same key share one render: the first caller
// runs render() outside the lock, the rest block on its completion.
// Render errors are returned to every waiter and are not cached.
func (c *cache) getOrRender(key string, render func() (renderResult, error)) (renderResult, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.touchLocked(el)
		res := el.Value.(*entry).res
		c.mu.Unlock()
		c.metrics.cacheHits.Add(1)
		return res, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.metrics.cacheCoalesced.Add(1)
		<-f.done
		return f.res, f.err
	}
	f := &flight{done: make(chan struct{})}
	// A render that panics unwinds past the assignment below; waiters
	// then see this error instead of a zero result.
	f.err = errors.New("serve: render aborted")
	c.flights[key] = f
	c.mu.Unlock()
	c.metrics.cacheMisses.Add(1)

	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil {
			c.insertLocked(key, f.res)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.res, f.err = render()
	return f.res, f.err
}

// touchLocked records a hit: protected entries move to their segment's
// front; probationary entries earn promotion into the protected
// segment, whose own LRU tail demotes back to probation when the 80%
// cap overflows. Promotion and demotion move bytes between segments but
// never change the total, so no eviction can be needed here.
func (c *cache) touchLocked(el *list.Element) {
	e := el.Value.(*entry)
	if e.protected {
		c.prot.MoveToFront(el)
		return
	}
	c.prob.Remove(el)
	c.probBytes -= e.res.size()
	e.protected = true
	c.items[e.key] = c.prot.PushFront(e)
	c.protBytes += e.res.size()
	for c.protBytes > c.protMax && c.prot.Len() > 1 {
		tail := c.prot.Back()
		te := tail.Value.(*entry)
		c.prot.Remove(tail)
		c.protBytes -= te.res.size()
		te.protected = false
		c.items[te.key] = c.prob.PushFront(te)
		c.probBytes += te.res.size()
	}
}

// insertLocked admits res under key into the probationary segment and
// evicts until the byte budget holds again: probation drains from its
// cold end first, protection only when probation is exhausted. The
// newest entry always stays, even when it alone exceeds the budget: the
// bytes are already rendered, and serving repeats of an oversized
// artifact is the whole point of the cache.
func (c *cache) insertLocked(key string, res renderResult) {
	if el, ok := c.items[key]; ok {
		// A fresher render of the same key (possible when the entry was
		// evicted and re-requested while we rendered): replace it.
		c.removeLocked(el)
	}
	c.items[key] = c.prob.PushFront(&entry{key: key, res: res})
	c.probBytes += res.size()
	for c.probBytes+c.protBytes > c.maxBytes {
		var victim *list.Element
		switch {
		case c.prob.Len() > 1:
			victim = c.prob.Back()
		case c.prot.Len() > 0:
			victim = c.prot.Back()
		default:
			c.metrics.cacheBytes.Store(c.probBytes + c.protBytes)
			return // only the just-admitted entry remains; it stays
		}
		c.removeLocked(victim)
		c.metrics.cacheEvictions.Add(1)
	}
	c.metrics.cacheBytes.Store(c.probBytes + c.protBytes)
}

// removeLocked unlinks an entry from its segment and the key map,
// returning its bytes to the budget.
func (c *cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	if e.protected {
		c.prot.Remove(el)
		c.protBytes -= e.res.size()
	} else {
		c.prob.Remove(el)
		c.probBytes -= e.res.size()
	}
	delete(c.items, e.key)
}

// len reports the number of cached entries (test hook).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prob.Len() + c.prot.Len()
}

// contains reports whether key is currently cached (test hook; does not
// touch recency).
func (c *cache) contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// accounting recomputes segment byte totals from the lists and reports
// them alongside the running counters (test hook: the two must agree
// and never go negative).
func (c *cache) accounting() (probBytes, protBytes int64, entries int, consistent bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var walkProb, walkProt int64
	for el := c.prob.Front(); el != nil; el = el.Next() {
		walkProb += el.Value.(*entry).res.size()
	}
	for el := c.prot.Front(); el != nil; el = el.Next() {
		walkProt += el.Value.(*entry).res.size()
	}
	consistent = walkProb == c.probBytes && walkProt == c.protBytes &&
		c.probBytes >= 0 && c.protBytes >= 0 &&
		len(c.items) == c.prob.Len()+c.prot.Len()
	return c.probBytes, c.protBytes, len(c.items), consistent
}
