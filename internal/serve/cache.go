package serve

import (
	"container/list"
	"errors"
	"sync"
)

// renderResult is one rendered artifact: the bytes plus the content type
// they should be served with.
type renderResult struct {
	data        []byte
	contentType string
}

// flight tracks one in-progress render so that concurrent requests for
// the same artifact wait for it instead of rendering redundantly
// (single-flight de-duplication).
type flight struct {
	done chan struct{}
	res  renderResult
	err  error
}

// cache is a byte-budgeted LRU of rendered artifacts. Keys embed the
// source directory's fingerprint, so a changed (live) trace directory
// naturally misses and renders fresh bytes while the stale entry ages
// out of the LRU order; nothing ever needs explicit invalidation.
type cache struct {
	maxBytes int64
	metrics  *Metrics

	mu      sync.Mutex
	bytes   int64
	order   *list.List // front = most recently used; values are *entry
	items   map[string]*list.Element
	flights map[string]*flight
}

type entry struct {
	key string
	res renderResult
}

func newCache(maxBytes int64, m *Metrics) *cache {
	return &cache{
		maxBytes: maxBytes,
		metrics:  m,
		order:    list.New(),
		items:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// getOrRender returns the cached artifact for key, or renders it.
// Concurrent calls with the same key share one render: the first caller
// runs render() outside the lock, the rest block on its completion.
// Render errors are returned to every waiter and are not cached.
func (c *cache) getOrRender(key string, render func() (renderResult, error)) (renderResult, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.mu.Unlock()
		c.metrics.cacheHits.Add(1)
		return el.Value.(*entry).res, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.metrics.cacheCoalesced.Add(1)
		<-f.done
		return f.res, f.err
	}
	f := &flight{done: make(chan struct{})}
	// A render that panics unwinds past the assignment below; waiters
	// then see this error instead of a zero result.
	f.err = errors.New("serve: render aborted")
	c.flights[key] = f
	c.mu.Unlock()
	c.metrics.cacheMisses.Add(1)

	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil {
			c.insertLocked(key, f.res)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.res, f.err = render()
	return f.res, f.err
}

// insertLocked adds res under key and evicts from the cold end until the
// byte budget holds again. The newest entry always stays, even when it
// alone exceeds the budget: the bytes are already rendered, and serving
// repeats of an oversized artifact is the whole point of the cache.
func (c *cache) insertLocked(key string, res renderResult) {
	if el, ok := c.items[key]; ok {
		// A fresher render of the same key (possible when the entry was
		// evicted and re-requested while we rendered): replace it.
		c.bytes -= int64(len(el.Value.(*entry).res.data))
		c.order.Remove(el)
		delete(c.items, key)
	}
	c.items[key] = c.order.PushFront(&entry{key: key, res: res})
	c.bytes += int64(len(res.data))
	for c.bytes > c.maxBytes && c.order.Len() > 1 {
		coldest := c.order.Back()
		e := coldest.Value.(*entry)
		c.order.Remove(coldest)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.res.data))
		c.metrics.cacheEvictions.Add(1)
	}
	c.metrics.cacheBytes.Store(c.bytes)
}

// len reports the number of cached entries (test hook).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
