package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

type runsPage struct {
	Runs []struct {
		ID string `json:"id"`
	} `json:"runs"`
	Total  int `json:"total"`
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
}

// TestRunsPaginationProperty: for any page size, walking /api/runs
// page by page yields every registered run exactly once, in the stable
// lexicographic order, with a consistent total.
func TestRunsPaginationProperty(t *testing.T) {
	const n = 23
	root := t.TempDir()
	var wantIDs []string
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("run%03d", i)
		writeMiniRun(t, root, id, i)
		wantIDs = append(wantIDs, id)
	}
	srv, err := New(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	for _, limit := range []int{1, 2, 3, 5, 7, n, 50} {
		var got []string
		for offset := 0; ; {
			res, body := get(t, h, fmt.Sprintf("/api/runs?offset=%d&limit=%d", offset, limit))
			if res.StatusCode != http.StatusOK {
				t.Fatalf("limit=%d offset=%d: status %d (%s)", limit, offset, res.StatusCode, body)
			}
			var page runsPage
			if err := json.Unmarshal([]byte(body), &page); err != nil {
				t.Fatal(err)
			}
			if page.Total != n {
				t.Fatalf("limit=%d offset=%d: total = %d, want %d", limit, offset, page.Total, n)
			}
			if len(page.Runs) == 0 {
				break
			}
			for _, r := range page.Runs {
				got = append(got, r.ID)
			}
			offset += len(page.Runs)
		}
		if len(got) != n {
			t.Fatalf("limit=%d: walked %d runs, want %d (each exactly once)", limit, len(got), n)
		}
		for i, id := range got {
			if id != wantIDs[i] {
				t.Fatalf("limit=%d: position %d = %q, want %q (stable sorted order)", limit, i, id, wantIDs[i])
			}
		}
	}

	// Degenerate windows are well-formed, not errors.
	for _, q := range []string{"?offset=1000", "?limit=0", "?offset=23&limit=5"} {
		res, body := get(t, h, "/api/runs"+q)
		if res.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", q, res.StatusCode)
		}
		var page runsPage
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			t.Errorf("%s: bad JSON: %v", q, err)
		} else if len(page.Runs) != 0 || page.Total != n {
			t.Errorf("%s: %d runs total %d, want empty page with total %d", q, len(page.Runs), page.Total, n)
		}
	}

	// The default (no parameters) still returns everything when the run
	// count is below the default page size.
	_, body := get(t, h, "/api/runs")
	var page runsPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Runs) != n {
		t.Errorf("default listing returned %d runs, want %d", len(page.Runs), n)
	}
}

// TestRunsPaginationRejectsGarbage: offset/limit values that are not
// non-negative integers are a 400, never a 500 or a panic.
func TestRunsPaginationRejectsGarbage(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	for _, q := range []string{
		"?offset=-1", "?limit=-1", "?offset=abc", "?limit=1e9",
		"?offset=0x10", "?limit=99999999999999999999", "?offset=%20", "?limit=1.5",
	} {
		res, body := get(t, h, "/api/runs"+q)
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", q, res.StatusCode, body)
		}
	}
}

// FuzzRunsPagination hammers the pagination parameters with arbitrary
// strings: any input must produce a well-formed HTTP response below
// 500, and a 200 must carry valid JSON.
func FuzzRunsPagination(f *testing.F) {
	root := f.TempDir()
	for i := 0; i < 3; i++ {
		writeMiniRun(f, root, fmt.Sprintf("run%d", i), i)
	}
	srv, err := New(Config{Root: root})
	if err != nil {
		f.Fatal(err)
	}
	h := srv.Handler()
	for _, seed := range [][2]string{
		{"", ""}, {"0", "1"}, {"-1", "-1"}, {"abc", "def"},
		{"99999999999999999999", "99999999999999999999"},
		{"1e9", "0x10"}, {" 5", "5 "}, {"\x00", "∞"}, {"2147483647", "2147483647"},
	} {
		f.Add(seed[0], seed[1])
	}
	f.Fuzz(func(t *testing.T, offset, limit string) {
		q := url.Values{}
		if offset != "" {
			q.Set("offset", offset)
		}
		if limit != "" {
			q.Set("limit", limit)
		}
		req := httptest.NewRequest("GET", "/api/runs?"+q.Encode(), nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("offset=%q limit=%q: status %d", offset, limit, rec.Code)
		}
		if rec.Code == 200 {
			var page runsPage
			if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
				t.Fatalf("offset=%q limit=%q: 200 with invalid JSON: %v", offset, limit, err)
			}
			if page.Total != 3 {
				t.Fatalf("offset=%q limit=%q: total = %d, want 3", offset, limit, page.Total)
			}
		}
	})
}
