package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mkRender(size int) func() (renderResult, error) {
	return func() (renderResult, error) {
		return renderResult{data: make([]byte, size), contentType: "test"}, nil
	}
}

// TestAdmissionSurvivesOneShotScan: a hot set that has earned promotion
// (hit at least twice) must survive an adversarial scan of one-shot
// keys large enough to recycle the whole byte budget many times over.
func TestAdmissionSurvivesOneShotScan(t *testing.T) {
	const budget = 100_000
	const entry = 10_000
	c := newCache(budget, newMetrics())

	// Five hot artifacts: rendered once, then hit to promote.
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("hot%d", i)
		if _, err := c.getOrRender(key, mkRender(entry)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.getOrRender(key, func() (renderResult, error) {
			t.Fatalf("%s re-rendered on immediate second access", key)
			return renderResult{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// The scan: 500 distinct keys seen exactly once, 50x the budget.
	for i := 0; i < 500; i++ {
		if _, err := c.getOrRender(fmt.Sprintf("scan%d", i), mkRender(entry)); err != nil {
			t.Fatal(err)
		}
	}

	var reRendered atomic.Int64
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("hot%d", i)
		if _, err := c.getOrRender(key, func() (renderResult, error) {
			reRendered.Add(1)
			return renderResult{data: make([]byte, entry)}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if n := reRendered.Load(); n != 0 {
		t.Errorf("%d of 5 hot artifacts were evicted by a one-shot scan; the promoted set must survive", n)
	}
	prob, prot, entries, consistent := c.accounting()
	if !consistent {
		t.Errorf("byte accounting inconsistent: prob=%d prot=%d entries=%d", prob, prot, entries)
	}
	if prob+prot > budget {
		t.Errorf("resident bytes %d exceed budget %d", prob+prot, budget)
	}
}

// TestAdmissionReplacesColdProtectedSet: scan resistance must not mean
// permanence - a *new* hot set that keeps getting hit is promoted and
// replaces a protected set that stopped being requested.
func TestAdmissionReplacesColdProtectedSet(t *testing.T) {
	const budget = 100_000
	const entry = 30_000 // 3 fit in the 80% protected cap (80_000 holds 2)
	c := newCache(budget, newMetrics())
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 2; i++ {
			key := fmt.Sprintf("gen%d-%d", gen, i)
			c.getOrRender(key, mkRender(entry))
			for hit := 0; hit < 3; hit++ {
				c.getOrRender(key, func() (renderResult, error) {
					return renderResult{}, fmt.Errorf("unexpected render of %s", key)
				})
			}
		}
	}
	// The newest generation is resident; the oldest is gone.
	for i := 0; i < 2; i++ {
		if !c.contains(fmt.Sprintf("gen2-%d", i)) {
			t.Errorf("newest hot entry gen2-%d was evicted", i)
		}
		if c.contains(fmt.Sprintf("gen0-%d", i)) {
			t.Errorf("stale protected entry gen0-%d was never replaced", i)
		}
	}
	if _, _, _, consistent := c.accounting(); !consistent {
		t.Error("byte accounting inconsistent after protected-set turnover")
	}
}

// TestCacheSoakRace drives concurrent zipfian-ish hot traffic plus
// one-shot scan traffic through the cache under -race: single-flight
// must hold (never two concurrent renders of one key), the hot set must
// stay mostly resident, and byte accounting must stay exact and
// non-negative throughout.
func TestCacheSoakRace(t *testing.T) {
	const (
		budget  = 64 << 10
		workers = 8
		iters   = 4000
		hotKeys = 8
	)
	c := newCache(budget, newMetrics())
	var inflight [hotKeys]atomic.Int32
	var scanSeq atomic.Int64

	stop := make(chan struct{})
	var auditErr atomic.Value
	go func() {
		// Concurrent auditor: accounting must hold at every sampled
		// instant, not just at the end.
		for {
			select {
			case <-stop:
				return
			default:
			}
			prob, prot, _, consistent := c.accounting()
			if !consistent || prob < 0 || prot < 0 {
				auditErr.Store(fmt.Sprintf("accounting diverged mid-soak: prob=%d prot=%d consistent=%v", prob, prot, consistent))
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < iters; i++ {
				if rng.Intn(100) < 70 {
					// Hot traffic: skewed toward low key indices.
					k := rng.Intn(hotKeys)
					if rng.Intn(2) == 0 {
						k = 0
					}
					key := fmt.Sprintf("hot%d", k)
					size := 1024 * (k + 1)
					c.getOrRender(key, func() (renderResult, error) {
						if n := inflight[k].Add(1); n != 1 {
							t.Errorf("single-flight violated: %d concurrent renders of %s", n, key)
						}
						defer inflight[k].Add(-1)
						return renderResult{data: make([]byte, size)}, nil
					})
				} else {
					// Scan traffic: globally unique one-shot keys.
					key := fmt.Sprintf("scan%d", scanSeq.Add(1))
					c.getOrRender(key, mkRender(2048))
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	if msg := auditErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	prob, prot, entries, consistent := c.accounting()
	if !consistent {
		t.Fatalf("final accounting inconsistent: prob=%d prot=%d entries=%d", prob, prot, entries)
	}
	if prob < 0 || prot < 0 {
		t.Fatalf("negative segment bytes: prob=%d prot=%d", prob, prot)
	}
	if prob+prot > budget {
		t.Fatalf("resident bytes %d exceed budget %d", prob+prot, budget)
	}
	// The hottest key is hammered from every worker; it must be resident.
	if !c.contains("hot0") {
		t.Error("hottest key not resident after soak")
	}
}

// TestCacheErrorsNotCached: render errors propagate to every waiter and
// leave no entry (and no bytes) behind.
func TestCacheErrorsNotCached(t *testing.T) {
	c := newCache(1<<20, newMetrics())
	boom := fmt.Errorf("render exploded")
	if _, err := c.getOrRender("k", func() (renderResult, error) { return renderResult{}, boom }); err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if c.len() != 0 {
		t.Errorf("failed render left %d entries", c.len())
	}
	var rendered bool
	c.getOrRender("k", func() (renderResult, error) {
		rendered = true
		return renderResult{data: []byte("ok")}, nil
	})
	if !rendered {
		t.Error("second attempt did not re-render after an error")
	}
	if prob, prot, _, consistent := c.accounting(); !consistent || prob+prot != 2 {
		t.Errorf("accounting after error+retry: prob=%d prot=%d consistent=%v", prob, prot, consistent)
	}
}
