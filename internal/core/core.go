// Package core is ActorProf's public facade: it configures and executes
// a profiled FA-BSP run end to end (machine model, trace collection,
// actor runtime per PE), assembles the trace set, and builds the
// standard visualizations - the programmatic equivalent of compiling an
// HClib-Actor application with ActorProf's -DENABLE_TRACE /
// -DENABLE_TCOMM_PROFILING / -DENABLE_TRACE_PHYSICAL macros and then
// running the visualizer with -l / -lp / -s / -p.
package core

import (
	"fmt"

	"actorprof/internal/actor"
	"actorprof/internal/conveyor"
	"actorprof/internal/papi"
	"actorprof/internal/shmem"
	"actorprof/internal/sim"
	"actorprof/internal/trace"
	"actorprof/internal/viz"
	"actorprof/internal/whatif"
)

// Options configures a profiled run.
type Options struct {
	// Machine is the PE/node layout. Required.
	Machine sim.Machine
	// Timing selects Virtual (deterministic, default) or Hybrid clocks.
	Timing sim.TimingMode
	// Cost overrides the data-movement cost model (default:
	// sim.DefaultCostModel()).
	Cost sim.CostModel
	// Trace selects which ActorProf features are enabled.
	Trace trace.Config
	// BufferItems is the conveyor aggregation buffer capacity (default:
	// the conveyor's own default).
	BufferItems int
	// Topology overrides the conveyor routing scheme (default auto:
	// 1D Linear / 2D Mesh / 3D Cube by node count).
	Topology conveyor.Topology
	// Costs overrides the PAPI user-region cost model.
	Costs papi.CostModel
	// APIProfile, when non-nil, additionally counts every OpenSHMEM
	// routine invocation (the pshmem-style interface of paper Section
	// V-B), including the non-blocking routines conventional profilers
	// miss.
	APIProfile *shmem.APIProfile
	// StreamDir, when non-empty, switches the run to a streaming
	// collector that writes trace records into this directory as they
	// are produced instead of buffering them (paper Section VI: traces
	// can reach 100 GB). The directory is finalized when Run returns;
	// while the run is still executing, actorprofd (or trace.ReadSetLive)
	// can ingest the directory and serve the plots live.
	StreamDir string
}

// App is the SPMD application body, run once per PE with that PE's actor
// runtime. Returning an error aborts the run.
type App func(rt *actor.Runtime) error

// Run executes app on every PE under ActorProf instrumentation and
// returns the assembled trace set.
func Run(opts Options, app App) (*trace.Set, error) {
	set, _, err := run(opts, app, false)
	return set, err
}

// RunCaptured is Run plus what-if schedule capture: every clock charge
// and profiling region transition is recorded per PE, and the resulting
// schedule feeds internal/whatif (critical paths, bottleneck ranking,
// causal projections). When opts.StreamDir is set, the schedule is also
// written there as schedule.json so actorprofd and `actorprof whatif`
// find it next to the trace.
func RunCaptured(opts Options, app App) (*trace.Set, *sim.Schedule, error) {
	return run(opts, app, true)
}

func run(opts Options, app App, capture bool) (*trace.Set, *sim.Schedule, error) {
	if err := opts.Machine.Validate(); err != nil {
		return nil, nil, err
	}
	// Default the cost model explicitly and reject degenerate ones
	// (zero-value or free-network models silently produce all-zero
	// profiles and poison what-if projections).
	cost := opts.Cost
	if cost == (sim.CostModel{}) {
		cost = sim.DefaultCostModel()
	}
	if err := cost.Validate(); err != nil {
		return nil, nil, err
	}
	var coll *trace.Collector
	var err error
	if opts.StreamDir != "" {
		coll, err = trace.NewStreamingCollector(opts.Trace, opts.Machine, opts.StreamDir)
	} else {
		coll, err = trace.NewCollector(opts.Trace, opts.Machine)
	}
	if err != nil {
		return nil, nil, err
	}
	var rec *sim.ScheduleRecorder
	if capture {
		rec = sim.NewScheduleRecorder(opts.Machine, opts.Timing, cost)
	}
	runErr := shmem.Run(shmem.Config{
		Machine:  opts.Machine,
		Cost:     cost,
		Timing:   opts.Timing,
		Profile:  opts.APIProfile,
		Schedule: rec,
	}, func(pe *shmem.PE) {
		rt := actor.NewRuntime(pe, actor.RuntimeOptions{
			Collector:   coll,
			Costs:       opts.Costs,
			BufferItems: opts.BufferItems,
			Topology:    opts.Topology,
		})
		if err := app(rt); err != nil {
			panic(fmt.Sprintf("core: app failed on PE %d: %v", pe.Rank(), err))
		}
		rt.Close()
		pe.Barrier()
	})
	if runErr != nil {
		return nil, nil, runErr
	}
	if coll.Streaming() {
		if err := coll.Finalize(); err != nil {
			return nil, nil, err
		}
	}
	var sched *sim.Schedule
	if rec != nil {
		sched = rec.Schedule()
		if opts.StreamDir != "" {
			if err := whatif.WriteScheduleFile(opts.StreamDir, sched); err != nil {
				return nil, nil, err
			}
		}
	}
	return coll.Set(), sched, nil
}

// WhatIf projects a perturbation over a captured schedule and returns
// the differentially validated report (see whatif.Compare).
func WhatIf(sched *sim.Schedule, p whatif.Perturbation) (*whatif.Report, error) {
	return whatif.Compare(sched, p)
}

// WhatIfPlot builds the what-if comparison plot: baseline vs projected
// aggregate regimes plus the makespan, with deltas.
func WhatIfPlot(rep *whatif.Report, title string) *viz.WhatIf {
	bs, ps := rep.Baseline.Totals.Sum(), rep.Projected.Totals.Sum()
	return &viz.WhatIf{
		Title:    title,
		Subtitle: fmt.Sprintf("projected makespan delta %+d cycles (%+.1f%%)", rep.Delta.Makespan, rep.Delta.MakespanPct),
		Rows: []viz.WhatIfRow{
			{Label: "T_MAIN", Baseline: bs.TMain, Projected: ps.TMain},
			{Label: "T_COMM", Baseline: bs.TComm, Projected: ps.TComm},
			{Label: "T_PROC", Baseline: bs.TProc, Projected: ps.TProc},
			{Label: "T_TOTAL", Baseline: bs.TTotal, Projected: ps.TTotal},
			{Label: "makespan", Baseline: rep.Baseline.Totals.Makespan, Projected: rep.Projected.Totals.Makespan},
		},
	}
}

// BottleneckPlot builds the ranked per-actor bottleneck plot from an
// analysis, keeping the top entries.
func BottleneckPlot(an *whatif.Analysis, top int, title string) *viz.Ranked {
	rows := an.Bottlenecks
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	out := &viz.Ranked{Title: title, XLabel: "avg handler cycles / avg activation interval"}
	for _, b := range rows {
		out.Rows = append(out.Rows, viz.RankedRow{
			Label: b.Label,
			Score: b.Score,
			Detail: fmt.Sprintf("%s msgs in %s activations, avg %s cyc/msg",
				formatInt(b.Messages), formatInt(b.Activations), formatInt(int64(b.AvgCycles))),
		})
	}
	return out
}

func formatInt(v int64) string { return fmt.Sprintf("%d", v) }

// The plot constructors below accept any trace.Source - a fully
// materialized *trace.Set or the O(PEs^2) *trace.Summary produced by
// trace.ReadSummary / (*trace.Set).Summary() - since every standard
// plot consumes only matrices, per-PE totals, and the overall
// breakdown, never individual records.

// LogicalHeatmap builds the Figure 3/4 plot (-l): pre-aggregation send
// counts between every PE pair, with send/recv totals.
func LogicalHeatmap(set trace.Source, title string) *viz.Heatmap {
	return &viz.Heatmap{
		Title:  title,
		Cells:  set.LogicalMatrix(),
		Totals: true,
	}
}

// PhysicalHeatmap builds the Figure 8/9 plot (-p): post-aggregation
// buffer counts between every PE pair.
func PhysicalHeatmap(set trace.Source, title string) *viz.Heatmap {
	return &viz.Heatmap{
		Title:  title,
		Cells:  set.PhysicalMatrix(),
		Totals: true,
	}
}

// LogicalViolin builds the Figure 5 plot: quartile violins over per-PE
// total logical sends and recvs.
func LogicalViolin(set trace.Source, title string) *viz.Violin {
	m := set.LogicalMatrix()
	return &viz.Violin{
		Title:  title,
		YLabel: "messages per PE",
		Groups: []viz.ViolinGroup{
			{Label: "sends", Values: toFloats(m.SendTotals())},
			{Label: "recvs", Values: toFloats(m.RecvTotals())},
		},
	}
}

// PhysicalViolin builds the Figure 7 plot: quartile violins over per-PE
// total physical buffers sent and received.
func PhysicalViolin(set trace.Source, title string) *viz.Violin {
	m := set.PhysicalMatrix()
	return &viz.Violin{
		Title:  title,
		YLabel: "buffers per PE",
		Groups: []viz.ViolinGroup{
			{Label: "sends", Values: toFloats(m.SendTotals())},
			{Label: "recvs", Values: toFloats(m.RecvTotals())},
		},
	}
}

// PAPIBar builds the Figure 10/11 plot (-lp): one bar per PE with the
// event's total across the PE's PAPI records.
func PAPIBar(set trace.Source, ev papi.Event, title string) *viz.Bar {
	vals := set.PAPITotalsPerPE(ev)
	labels := make([]string, len(vals))
	for i := range labels {
		labels[i] = fmt.Sprintf("%d", i)
	}
	return &viz.Bar{
		Title:  title,
		YLabel: ev.String(),
		Labels: labels,
		Values: vals,
	}
}

// PAPIGroupedBar builds the full -lp plot: every configured PAPI
// counter (up to four, PAPI's limit) per PE in one grouped bar graph.
func PAPIGroupedBar(set trace.Source, title string) *viz.GroupedBar {
	npes, _ := set.Shape()
	labels := make([]string, npes)
	for i := range labels {
		labels[i] = fmt.Sprintf("%d", i)
	}
	events := set.TraceConfig().PAPIEvents
	series := make([]viz.Series, 0, len(events))
	for _, ev := range events {
		series = append(series, viz.Series{
			Name:   ev.String(),
			Values: set.PAPITotalsPerPE(ev),
		})
	}
	return &viz.GroupedBar{
		Title:   title,
		YLabel:  "share of per-series max",
		Labels:  labels,
		Series:  series,
		LogHint: true,
	}
}

// NodeHeatmap builds the node-level hotspot heatmap: the physical
// matrix aggregated over nodes, exposing which node pairs carry the
// network load.
func NodeHeatmap(set trace.Source, title string) *viz.Heatmap {
	_, perNode := set.Shape()
	return &viz.Heatmap{
		Title:    title,
		Cells:    set.PhysicalMatrix().AggregateNodes(perNode),
		RowLabel: "src node",
		ColLabel: "dst node",
		Totals:   true,
	}
}

// OverallStacked builds the Figure 12/13 plot (-s): per-PE stacked
// MAIN/COMM/PROC cycles, absolute or relative.
func OverallStacked(set trace.Source, relative bool, title string) *viz.StackedBar {
	n, _ := set.Shape()
	main := make([]int64, n)
	comm := make([]int64, n)
	proc := make([]int64, n)
	for _, r := range set.OverallRecords() {
		if r.PE < 0 || r.PE >= n {
			continue
		}
		main[r.PE], comm[r.PE], proc[r.PE] = r.TMain, r.TComm, r.TProc
	}
	yl := "cycles"
	if relative {
		yl = "fraction of T_TOTAL"
	}
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("%d", i)
	}
	return &viz.StackedBar{
		Title:    title,
		YLabel:   yl,
		Labels:   labels,
		Relative: relative,
		Series: []viz.Series{
			{Name: "T_MAIN", Values: main},
			{Name: "T_COMM", Values: comm},
			{Name: "T_PROC", Values: proc},
		},
	}
}

// ActivityTimeline folds a windowed query's pyramid buckets into the
// "time-travel" activity plot: transfer volume over the trace clock at
// one level of detail. The result must carry buckets, i.e. come from a
// Window with LOD >= 1.
func ActivityTimeline(res *trace.WindowResult, title string) (*viz.Timeline, error) {
	if res.LOD < 1 || len(res.Buckets) == 0 {
		return nil, fmt.Errorf("core: timeline needs pyramid buckets (query with LOD >= 1 over a non-empty window)")
	}
	tl := &viz.Timeline{Title: title, XLabel: res.DomainName}
	for _, b := range res.Buckets {
		tl.Buckets = append(tl.Buckets, viz.TimelineBucket{
			T0: b.T0, T1: b.T1, Count: b.Count, Bytes: b.Bytes,
		})
	}
	return tl, nil
}

func toFloats(vals []int64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = float64(v)
	}
	return out
}
