package core

import (
	"strings"
	"testing"

	"actorprof/internal/actor"
	"actorprof/internal/apps"
	"actorprof/internal/conveyor"
	"actorprof/internal/papi"
	"actorprof/internal/shmem"
	"actorprof/internal/sim"
	"actorprof/internal/trace"
	"actorprof/internal/whatif"
)

func TestRunValidatesMachine(t *testing.T) {
	_, err := Run(Options{Machine: sim.Machine{NumPEs: 3, PEsPerNode: 2}},
		func(rt *actor.Runtime) error { return nil })
	if err == nil {
		t.Fatal("expected machine validation error")
	}
}

func TestRunPropagatesAppErrors(t *testing.T) {
	_, err := Run(Options{Machine: sim.Machine{NumPEs: 2, PEsPerNode: 2}},
		func(rt *actor.Runtime) error {
			if rt.PE().Rank() == 1 {
				return strings.NewReader("").UnreadByte() // any error
			}
			rt.PE().Barrier() // won't be reached by PE 1's error path
			return nil
		})
	if err == nil {
		t.Fatal("expected app error to propagate")
	}
}

func TestRunHistogramEndToEnd(t *testing.T) {
	set, err := Run(Options{
		Machine: sim.Machine{NumPEs: 4, PEsPerNode: 2},
		Trace:   FullTrace(),
	}, func(rt *actor.Runtime) error {
		_, err := apps.Histogram(rt, apps.HistogramConfig{
			UpdatesPerPE: 100, TableSizePerPE: 16, Seed: 3,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if set.LogicalMatrix().Total() != 400 {
		t.Fatalf("logical total = %d, want 400", set.LogicalMatrix().Total())
	}
	if len(set.Overall) != 4 {
		t.Fatalf("overall records = %d", len(set.Overall))
	}
}

// caseStudy runs one small case-study cell, shared across shape tests.
func caseStudy(t *testing.T, npes, perNode int, dist DistKind) *TriangleReport {
	t.Helper()
	rep, err := RunTriangle(TriangleExperiment{
		Scale: 11, EdgeFactor: 16, Seed: 12345,
		NumPEs: npes, PEsPerNode: perNode,
		Dist: dist,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Validated() {
		t.Fatalf("%s: count %d != expected %d", dist, rep.Triangles, rep.Expected)
	}
	return rep
}

// TestShapeFigure345 checks the logical-trace observations of Figures
// 3-5: cyclic shows heavier send imbalance than range, and range's
// communication matrix is lower-triangular (the "(L) observation").
func TestShapeFigure345(t *testing.T) {
	cy := caseStudy(t, 16, 16, DistCyclic)
	rg := caseStudy(t, 16, 16, DistRange)

	cyM, rgM := cy.Set.LogicalMatrix(), rg.Set.LogicalMatrix()
	if cyM.Total() != rgM.Total() {
		t.Fatalf("distributions must send the same logical total: %d vs %d",
			cyM.Total(), rgM.Total())
	}

	cyMaxSend := maxOf(cyM.SendTotals())
	rgMaxSend := maxOf(rgM.SendTotals())
	if float64(cyMaxSend) < 1.5*float64(rgMaxSend) {
		t.Errorf("cyclic max sends (%d) should clearly exceed range's (%d)",
			cyMaxSend, rgMaxSend)
	}
	if trace.MaxOverMean(cyM.SendTotals()) <= trace.MaxOverMean(rgM.SendTotals()) {
		t.Error("cyclic send imbalance should exceed range's")
	}

	// (L) observation: under range, PE p only sends to PEs q <= p (an
	// actor sends toward the owner of row j, and j < i implies owner(j)
	// <= owner(i) for contiguous nnz-balanced ranges).
	for src := 0; src < 16; src++ {
		for dst := src + 1; dst < 16; dst++ {
			if rgM[src][dst] != 0 {
				t.Fatalf("(L) violated: range PE %d sent %d messages to higher PE %d",
					src, rgM[src][dst], dst)
			}
		}
	}

	// Monotone trend of recvs under range (paper: "monotonically
	// decreasing fashion"): compare the first and last quarter means.
	recvs := rgM.RecvTotals()
	q := len(recvs) / 4
	var head, tail float64
	for i := 0; i < q; i++ {
		head += float64(recvs[i])
		tail += float64(recvs[len(recvs)-1-i])
	}
	if head <= tail {
		t.Errorf("range recvs should trend downward with PE id: head=%v tail=%v", head, tail)
	}
}

// TestShapeFigure89 checks the physical-trace topology observations: one
// node uses only local_send (1D linear); two nodes also use
// nonblock_send/nonblock_progress and only along mesh rows and columns.
func TestShapeFigure89(t *testing.T) {
	one := caseStudy(t, 16, 16, DistCyclic)
	kinds := one.Set.PhysicalKindCounts()
	if kinds[conveyor.NonblockSend] != 0 {
		t.Errorf("single node must not use nonblock_send, got %d", kinds[conveyor.NonblockSend])
	}
	if kinds[conveyor.LocalSend] == 0 {
		t.Error("single node run recorded no local_send buffers")
	}

	two := caseStudy(t, 32, 16, DistCyclic)
	kinds2 := two.Set.PhysicalKindCounts()
	if kinds2[conveyor.NonblockSend] == 0 {
		t.Error("two-node run must use nonblock_send")
	}
	if kinds2[conveyor.NonblockProgress] != kinds2[conveyor.NonblockSend] {
		t.Errorf("every nonblock_send needs a nonblock_progress: %d vs %d",
			kinds2[conveyor.NonblockSend], kinds2[conveyor.NonblockProgress])
	}
	// Mesh constraint: physical transfers only along rows (same node) or
	// columns (same local rank).
	m := sim.Machine{NumPEs: 32, PEsPerNode: 16}
	for _, recs := range two.Set.Physical {
		for _, r := range recs {
			sameNode := m.SameNode(r.SrcPE, r.DstPE)
			sameCol := m.LocalRank(r.SrcPE) == m.LocalRank(r.DstPE)
			if !sameNode && !sameCol {
				t.Fatalf("off-mesh transfer %d -> %d", r.SrcPE, r.DstPE)
			}
			if r.Kind == conveyor.LocalSend && !sameNode {
				t.Fatalf("local_send across nodes: %d -> %d", r.SrcPE, r.DstPE)
			}
		}
	}
}

// TestShapeFigure1011 checks the PAPI observation: under cyclic the
// instruction totals are far more imbalanced than under range.
func TestShapeFigure1011(t *testing.T) {
	cy := caseStudy(t, 16, 16, DistCyclic)
	rg := caseStudy(t, 16, 16, DistRange)
	cyIns := cy.Set.PAPITotalsPerPE(papi.TOT_INS)
	rgIns := rg.Set.PAPITotalsPerPE(papi.TOT_INS)
	cyImb := trace.MaxOverMean(cyIns)
	rgImb := trace.MaxOverMean(rgIns)
	if cyImb < 2 {
		t.Errorf("cyclic TOT_INS imbalance %.2f, want the paper's multi-x imbalance", cyImb)
	}
	if cyImb <= rgImb {
		t.Errorf("cyclic imbalance (%.2f) should exceed range's (%.2f)", cyImb, rgImb)
	}
}

// TestShapeFigure1213 checks the overall breakdown: COMM dominates, MAIN
// stays small, range beats cyclic in total cycles by roughly 2x, and
// range's PROC share exceeds cyclic's.
func TestShapeFigure1213(t *testing.T) {
	for _, nodes := range []int{1, 2} {
		cy := caseStudy(t, nodes*16, 16, DistCyclic)
		rg := caseStudy(t, nodes*16, 16, DistRange)

		cyTot, cyMain, cyProc := sumOverall(cy.Set)
		rgTot, rgMain, rgProc := sumOverall(rg.Set)

		if frac(cyMain, cyTot) > 0.10 {
			t.Errorf("nodes=%d cyclic MAIN share %.3f, want small (paper <= 0.05)",
				nodes, frac(cyMain, cyTot))
		}
		if frac(rgMain, rgTot) > 0.10 {
			t.Errorf("nodes=%d range MAIN share %.3f, want small", nodes, frac(rgMain, rgTot))
		}
		cyComm := 1 - frac(cyMain, cyTot) - frac(cyProc, cyTot)
		rgComm := 1 - frac(rgMain, rgTot) - frac(rgProc, rgTot)
		if cyComm < 0.5 || rgComm < 0.5 {
			t.Errorf("nodes=%d COMM must dominate: cyclic %.2f range %.2f", nodes, cyComm, rgComm)
		}
		if frac(rgProc, rgTot) <= frac(cyProc, cyTot) {
			t.Errorf("nodes=%d range PROC share (%.3f) should exceed cyclic's (%.3f)",
				nodes, frac(rgProc, rgTot), frac(cyProc, cyTot))
		}
		// Range is faster overall (~2x in the paper).
		cyWall := maxTotal(cy.Set)
		rgWall := maxTotal(rg.Set)
		if speedup := float64(cyWall) / float64(rgWall); speedup < 1.3 {
			t.Errorf("nodes=%d cyclic/range speedup %.2f, want clearly > 1", nodes, speedup)
		}
	}
}

// TestFourNodeCubeTopology runs the case study on 4 nodes (64 PEs),
// where the conveyor auto-selects the 3D Cube topology (paper Section
// III-C lists 1D Linear / 2D Mesh / 3D Cube), and validates the count
// plus the cube's row/column transfer constraint.
func TestFourNodeCubeTopology(t *testing.T) {
	rep, err := RunTriangle(TriangleExperiment{
		Scale: 10, EdgeFactor: 16, Seed: 12345,
		NumPEs: 64, PEsPerNode: 16,
		Dist: DistCyclic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Validated() {
		t.Fatalf("cube run invalid: %d vs %d", rep.Triangles, rep.Expected)
	}
	// Cube constraint: inter-node transfers stay rank-aligned and move
	// along one node-grid axis at a time (2x2 grid of nodes).
	m := sim.Machine{NumPEs: 64, PEsPerNode: 16}
	const gridCols = 2
	for _, recs := range rep.Set.Physical {
		for _, r := range recs {
			if m.SameNode(r.SrcPE, r.DstPE) {
				continue
			}
			if m.LocalRank(r.SrcPE) != m.LocalRank(r.DstPE) {
				t.Fatalf("inter-node transfer %d->%d not rank-aligned", r.SrcPE, r.DstPE)
			}
			sr, sc := m.NodeOf(r.SrcPE)/gridCols, m.NodeOf(r.SrcPE)%gridCols
			dr, dc := m.NodeOf(r.DstPE)/gridCols, m.NodeOf(r.DstPE)%gridCols
			if sr != dr && sc != dc {
				t.Fatalf("diagonal node-grid transfer %d->%d", r.SrcPE, r.DstPE)
			}
		}
	}
}

func TestDistKindBuild(t *testing.T) {
	rep := caseStudy(t, 16, 16, DistBlock)
	if rep.DistName != "1D Block" {
		t.Fatalf("DistName = %q", rep.DistName)
	}
	if _, err := DistKind("bogus").Build(rep.Graph, 4); err == nil {
		t.Fatal("expected error for unknown distribution")
	}
}

// TestAPIProfileCrossValidatesPhysicalTrace runs a two-node workload
// with both the physical trace and the pshmem-style API profile enabled
// and cross-checks them: every conveyor nonblock_send issues exactly two
// shmem_putmem_nbi calls (buffer data + length word) and every
// nonblock_progress exactly one shmem_quiet. This ties ActorProf's
// physical trace to the profiling-interface approach the paper's
// Section V-B proposes.
func TestAPIProfileCrossValidatesPhysicalTrace(t *testing.T) {
	prof := shmem.NewAPIProfile()
	set, err := Run(Options{
		Machine:    sim.Machine{NumPEs: 8, PEsPerNode: 4},
		Trace:      trace.Config{Physical: true},
		APIProfile: prof,
	}, func(rt *actor.Runtime) error {
		_, err := apps.Histogram(rt, apps.HistogramConfig{
			UpdatesPerPE: 800, TableSizePerPE: 64, Seed: 5,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := set.PhysicalKindCounts()
	nbSends := kinds[conveyor.NonblockSend]
	progress := kinds[conveyor.NonblockProgress]
	if nbSends == 0 {
		t.Fatal("two-node histogram produced no nonblock sends")
	}
	if got := prof.TotalCount(shmem.RoutinePutNBI); got != 2*nbSends {
		t.Errorf("putmem_nbi calls = %d, want 2 x %d nonblock_sends", got, nbSends)
	}
	if got := prof.TotalCount(shmem.RoutineQuiet); got != progress {
		t.Errorf("quiet calls = %d, want %d (one per nonblock_progress)", got, progress)
	}
}

// TestHybridTimingMode runs a traced program under Hybrid clocks (the
// rdtsc-analogue mode): shapes must still hold even though real host
// cycles accumulate on top of the cost model.
func TestHybridTimingMode(t *testing.T) {
	set, err := Run(Options{
		Machine: sim.Machine{NumPEs: 8, PEsPerNode: 4},
		Timing:  sim.Hybrid,
		Trace:   trace.Config{Overall: true, Logical: true},
	}, func(rt *actor.Runtime) error {
		_, err := apps.Histogram(rt, apps.HistogramConfig{
			UpdatesPerPE: 500, TableSizePerPE: 64, Seed: 77,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Overall) != 8 {
		t.Fatalf("overall records = %d", len(set.Overall))
	}
	for _, r := range set.Overall {
		if r.TTotal <= 0 {
			t.Errorf("PE %d: non-positive total %d under hybrid timing", r.PE, r.TTotal)
		}
		if r.TMain < 0 || r.TProc < 0 || r.TComm < 0 {
			t.Errorf("PE %d: negative regime %+v", r.PE, r)
		}
		if r.TMain+r.TProc > r.TTotal {
			t.Errorf("PE %d: MAIN+PROC exceed total: %+v", r.PE, r)
		}
	}
	if set.LogicalMatrix().Total() != 8*500 {
		t.Fatalf("logical total = %d", set.LogicalMatrix().Total())
	}
}

func TestReportBuilders(t *testing.T) {
	rep := caseStudy(t, 16, 16, DistCyclic)
	set := rep.Set

	hm := LogicalHeatmap(set, "fig3")
	if _, err := hm.RenderSVG(); err != nil {
		t.Fatalf("logical heatmap: %v", err)
	}
	pm := PhysicalHeatmap(set, "fig8")
	if _, err := pm.RenderSVG(); err != nil {
		t.Fatalf("physical heatmap: %v", err)
	}
	vl := LogicalViolin(set, "fig5")
	if _, err := vl.RenderSVG(); err != nil {
		t.Fatalf("logical violin: %v", err)
	}
	pv := PhysicalViolin(set, "fig7")
	if _, err := pv.RenderSVG(); err != nil {
		t.Fatalf("physical violin: %v", err)
	}
	bar := PAPIBar(set, papi.TOT_INS, "fig10")
	if _, err := bar.RenderSVG(); err != nil {
		t.Fatalf("papi bar: %v", err)
	}
	for _, rel := range []bool{false, true} {
		sb := OverallStacked(set, rel, "fig12")
		if _, err := sb.RenderSVG(); err != nil {
			t.Fatalf("overall stacked (rel=%v): %v", rel, err)
		}
	}
}

func TestTraceRoundTripThroughFiles(t *testing.T) {
	rep := caseStudy(t, 16, 16, DistRange)
	dir := t.TempDir()
	if err := rep.Set.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.LogicalMatrix().Total() != rep.Set.LogicalMatrix().Total() {
		t.Fatal("logical totals changed across file round trip")
	}
	if back.PhysicalMatrix().Total() != rep.Set.PhysicalMatrix().Total() {
		t.Fatal("physical totals changed across file round trip")
	}
}

func maxOf(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func sumOverall(s *trace.Set) (tot, main, proc int64) {
	for _, r := range s.Overall {
		tot += r.TTotal
		main += r.TMain
		proc += r.TProc
	}
	return
}

func maxTotal(s *trace.Set) int64 {
	var m int64
	for _, r := range s.Overall {
		if r.TTotal > m {
			m = r.TTotal
		}
	}
	return m
}

func frac(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// TestPlotsIdenticalAcrossFormats pins the binary-format acceptance
// criterion: the same trace written as CSV and as binary columnar files
// must render byte-identical plots - whether loaded as a full Set or
// folded into a Summary by the streaming aggregation path.
func TestPlotsIdenticalAcrossFormats(t *testing.T) {
	rep := caseStudy(t, 16, 16, DistCyclic)
	csvDir, binDir := t.TempDir(), t.TempDir()
	rep.Set.Config.Format = trace.FormatCSV
	if err := rep.Set.WriteFiles(csvDir); err != nil {
		t.Fatal(err)
	}
	rep.Set.Config.Format = trace.FormatBinary
	if err := rep.Set.WriteFiles(binDir); err != nil {
		t.Fatal(err)
	}

	render := func(s trace.Source) map[string]string {
		out := map[string]string{}
		add := func(name, svg string, err error) {
			if err != nil {
				t.Fatalf("rendering %s: %v", name, err)
			}
			out[name] = svg
		}
		svg, err := LogicalHeatmap(s, "t").RenderSVG()
		add("logical-heatmap", svg, err)
		svg, err = PhysicalHeatmap(s, "t").RenderSVG()
		add("physical-heatmap", svg, err)
		svg, err = LogicalViolin(s, "t").RenderSVG()
		add("logical-violin", svg, err)
		svg, err = PhysicalViolin(s, "t").RenderSVG()
		add("physical-violin", svg, err)
		svg, err = PAPIBar(s, papi.TOT_INS, "t").RenderSVG()
		add("papi-bar", svg, err)
		svg, err = PAPIGroupedBar(s, "t").RenderSVG()
		add("papi-grouped", svg, err)
		svg, err = NodeHeatmap(s, "t").RenderSVG()
		add("node-heatmap", svg, err)
		svg, err = OverallStacked(s, true, "t").RenderSVG()
		add("overall-stacked", svg, err)
		return out
	}

	fromCSV, err := trace.ReadSet(csvDir)
	if err != nil {
		t.Fatal(err)
	}
	want := render(fromCSV)

	fromBin, err := trace.ReadSet(binDir)
	if err != nil {
		t.Fatal(err)
	}
	for name, svg := range render(fromBin) {
		if svg != want[name] {
			t.Errorf("%s differs between CSV and binary traces", name)
		}
	}
	for label, dir := range map[string]string{"csv": csvDir, "binary": binDir} {
		sum, skipped, err := trace.ReadSummary(dir, trace.ReadOptions{})
		if err != nil || skipped != 0 {
			t.Fatalf("%s summary: skipped=%d err=%v", label, skipped, err)
		}
		for name, svg := range render(sum) {
			if svg != want[name] {
				t.Errorf("%s differs between full Set and streamed %s Summary", name, label)
			}
		}
	}
}

func TestRunStreamDirWritesAndFinalizesTrace(t *testing.T) {
	dir := t.TempDir()
	set, err := Run(Options{
		Machine:   sim.Machine{NumPEs: 4, PEsPerNode: 2},
		Trace:     FullTrace(),
		StreamDir: dir,
	}, func(rt *actor.Runtime) error {
		_, err := apps.Histogram(rt, apps.HistogramConfig{
			UpdatesPerPE: 100, TableSizePerPE: 16, Seed: 3,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// The returned set holds counters; the record data lives on disk in a
	// finalized directory that ReadSet loads like any buffered trace.
	if set.LogicalSendCount[0] == 0 {
		t.Error("streaming set lost the logical send counters")
	}
	got, err := trace.ReadSet(dir)
	if err != nil {
		t.Fatalf("reading finalized stream dir: %v", err)
	}
	if got.LogicalMatrix().Total() != 400 {
		t.Fatalf("logical total = %d, want 400", got.LogicalMatrix().Total())
	}
	if !got.Config.Physical || !got.Config.Overall {
		t.Error("finalized stream dir missing physical/overall features")
	}
}

func TestRunValidatesCostModel(t *testing.T) {
	bad := sim.DefaultCostModel()
	bad.NetworkLatency, bad.NetworkPerByte = 0, 0 // free network
	_, err := Run(Options{Machine: sim.Machine{NumPEs: 2, PEsPerNode: 2}, Cost: bad},
		func(rt *actor.Runtime) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "free network") {
		t.Fatalf("expected free-network cost error, got %v", err)
	}
	neg := sim.DefaultCostModel()
	neg.QuietLatency = -1
	if _, _, err := RunCaptured(Options{Machine: sim.Machine{NumPEs: 2, PEsPerNode: 2}, Cost: neg},
		func(rt *actor.Runtime) error { return nil }); err == nil {
		t.Fatal("expected negative-cost error from RunCaptured")
	}
}

// TestRunCapturedWritesSchedule: with StreamDir set, the schedule lands
// next to the streamed trace and round-trips through the whatif loader.
func TestRunCapturedWritesSchedule(t *testing.T) {
	dir := t.TempDir()
	_, sched, err := RunCaptured(Options{
		Machine:   sim.Machine{NumPEs: 2, PEsPerNode: 2},
		Trace:     trace.Config{Overall: true},
		StreamDir: dir,
	}, func(rt *actor.Runtime) error {
		_, err := apps.Histogram(rt, apps.HistogramConfig{UpdatesPerPE: 50, TableSizePerPE: 16, Seed: 3})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !whatif.HasSchedule(dir) {
		t.Fatal("StreamDir has no schedule.json")
	}
	got, err := whatif.ReadScheduleFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Events() != sched.Events() {
		t.Fatalf("on-disk schedule has %d events, in-memory %d", got.Events(), sched.Events())
	}
}
