package core

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"actorprof/internal/actor"
	"actorprof/internal/apps"
	"actorprof/internal/graph"
	"actorprof/internal/sim"
	"actorprof/internal/trace"
)

// runTriangleTrace runs trianglecount under physical tracing and
// returns the assembled Set.
func runTriangleTrace(t *testing.T) *trace.Set {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.Graph500(7, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	set, err := Run(Options{
		Machine: sim.Machine{NumPEs: 4, PEsPerNode: 2},
		Trace:   trace.Config{Physical: true, Format: trace.FormatBinary},
	}, func(rt *actor.Runtime) error {
		_, err := apps.TriangleCount(rt, g, graph.NewCyclicDist(rt.PE().NumPEs()))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// compareWindowResults holds an indexed query to the brute-force
// reference: everything but the provenance fields must match exactly.
func compareWindowResults(t *testing.T, label string, got, want *trace.WindowResult) {
	t.Helper()
	if got.Domain != want.Domain || got.LOD != want.LOD || got.BucketWidth != want.BucketWidth ||
		got.TMin != want.TMin || got.TMax != want.TMax || got.Truncated != want.Truncated {
		t.Fatalf("%s: metadata differs:\ngot  %+v\nwant %+v", label, got, want)
	}
	if !reflect.DeepEqual(got.Events, want.Events) {
		t.Fatalf("%s: events differ (%d vs %d)", label, len(got.Events), len(want.Events))
	}
	if !reflect.DeepEqual(got.Buckets, want.Buckets) {
		t.Fatalf("%s: buckets differ (%d vs %d)", label, len(got.Buckets), len(want.Buckets))
	}
}

// TestWindowQueryAllApps is the all-apps leg of the differential suite:
// every chaos app runs under physical tracing, streamed in binary form
// (so Finalize writes the time-index sidecar), and randomized window
// queries through the index must match the brute-force reference over
// the reloaded Set exactly - real traffic shapes, not synthetic ones.
func TestWindowQueryAllApps(t *testing.T) {
	for _, app := range apps.ChaosApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			_, err := Run(Options{
				Machine:     sim.Machine{NumPEs: 4, PEsPerNode: 2},
				Trace:       trace.Config{Physical: true, Format: trace.FormatBinary},
				BufferItems: app.BufferItems,
				StreamDir:   dir,
			}, func(rt *actor.Runtime) error {
				_, err := app.Run(rt)
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			ix, err := trace.LoadTimeIndex(dir)
			if err != nil {
				t.Fatalf("no time index after Finalize: %v", err)
			}
			ref, err := trace.ReadSet(dir)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(len(app.Name))))
			span := ix.TMax - ix.TMin + 1
			for trial := 0; trial < 40; trial++ {
				t0 := ix.TMin - 3 + rng.Int63n(span+6)
				q := trace.Window{
					T0:  t0,
					T1:  t0 + rng.Int63n(span/2+4),
					LOD: rng.Intn(5),
				}
				got, err := ix.Query(dir, q)
				if err != nil {
					t.Fatal(err)
				}
				compareWindowResults(t, app.Name, got, trace.QueryWindowSet(ref, q))
			}
			// Full span at both detail extremes.
			for _, q := range []trace.Window{
				{T0: ix.TMin, T1: ix.TMax + 1},
				{T0: ix.TMin, T1: ix.TMax + 1, LOD: 3},
			} {
				got, err := ix.Query(dir, q)
				if err != nil {
					t.Fatal(err)
				}
				compareWindowResults(t, app.Name, got, trace.QueryWindowSet(ref, q))
			}
		})
	}
}

// TestTrianglecountPerfettoExport runs the paper's flagship app under
// physical tracing and validates the full-model Perfetto export
// structurally (live runs are schedule-dependent, so the byte-for-byte
// golden lives over a fixed Set in internal/trace; this test covers a
// real trace's shape instead): a JSON object whose every event carries
// the required fields, opening with the clock_domain declaration.
func TestTrianglecountPerfettoExport(t *testing.T) {
	set := runTriangleTrace(t)
	var buf strings.Builder
	if err := set.ExportPerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	if doc.TraceEvents[0]["name"] != "clock_domain" {
		t.Fatal("stream does not open with the clock_domain metadata event")
	}
	if _, ok := doc.OtherData["clock_domain"].(string); !ok {
		t.Fatal("otherData is missing the clock_domain")
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		name, _ := e["name"].(string)
		ph, _ := e["ph"].(string)
		if name == "" || ph == "" {
			t.Fatalf("event missing name or phase: %v", e)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event %q has no numeric pid", name)
		}
		switch ph {
		case "M":
		case "i", "B", "E", "C", "X":
			if _, ok := e["ts"].(float64); !ok {
				t.Fatalf("%s event %q has no numeric ts", ph, name)
			}
		default:
			t.Fatalf("event %q has unknown phase %q", name, ph)
		}
		phases[ph]++
	}
	if phases["B"] == 0 || phases["B"] != phases["E"] {
		t.Fatalf("unbalanced durations: %d B vs %d E", phases["B"], phases["E"])
	}
	if phases["C"] == 0 {
		t.Fatal("no backlog counters in a conveyor trace")
	}
}
