package core

import (
	"fmt"
	"os"
	"strconv"

	"actorprof/internal/actor"
	"actorprof/internal/apps"
	"actorprof/internal/conveyor"
	"actorprof/internal/graph"
	"actorprof/internal/papi"
	"actorprof/internal/shmem"
	"actorprof/internal/sim"
	"actorprof/internal/trace"
)

// DistKind names a row distribution for the case-study experiments.
type DistKind string

// The distributions the case study compares (plus the 1D Block ablation
// point beyond the paper).
const (
	DistCyclic DistKind = "cyclic"
	DistRange  DistKind = "range"
	DistBlock  DistKind = "block"
)

// Build constructs the distribution for graph g over p PEs.
func (k DistKind) Build(g *graph.Graph, p int) (graph.Distribution, error) {
	switch k {
	case DistCyclic:
		return graph.NewCyclicDist(p), nil
	case DistRange:
		return graph.NewRangeDist(g, p), nil
	case DistBlock:
		return graph.NewBlockDist(g.NumVertices(), p), nil
	default:
		return nil, fmt.Errorf("core: unknown distribution %q", k)
	}
}

// Label returns the paper's name for the distribution.
func (k DistKind) Label() string {
	switch k {
	case DistCyclic:
		return "1D Cyclic"
	case DistRange:
		return "1D Range"
	case DistBlock:
		return "1D Block"
	default:
		return string(k)
	}
}

// TriangleExperiment is one cell of the paper's case-study grid: a graph,
// a machine shape, and a distribution.
type TriangleExperiment struct {
	// Scale / EdgeFactor / Seed parameterize the R-MAT input. The paper
	// uses scale 16, edge factor 16; DefaultScale applies when zero.
	Scale      int
	EdgeFactor int
	Seed       uint64
	// NumPEs / PEsPerNode shape the machine (16/16 and 32/16 in the
	// paper).
	NumPEs     int
	PEsPerNode int
	// Dist selects the row distribution.
	Dist DistKind
	// Trace selects ActorProf features; zero value enables everything.
	Trace trace.Config
	// BufferItems overrides the conveyor aggregation buffer size.
	BufferItems int
	// Topology overrides the conveyor routing scheme (default auto).
	Topology conveyor.Topology
	// APIProfile, when non-nil, counts every OpenSHMEM routine call
	// during the run (paper Section V-B's profiling-interface approach).
	APIProfile *shmem.APIProfile
	// Graph, when non-nil, is used instead of generating one (lets a
	// sweep share one input graph, as the paper's runs do).
	Graph *graph.Graph
}

// DefaultScale is the R-MAT scale used when TriangleExperiment.Scale is
// zero. The paper runs scale 16; the default here is 12 to keep the
// simulated benchmarks laptop-runnable, and the ACTORPROF_SCALE
// environment variable raises it (set 16 to match the paper exactly).
const DefaultScale = 12

// EnvScale resolves the effective default scale from ACTORPROF_SCALE.
func EnvScale() int {
	if s := os.Getenv("ACTORPROF_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 && v <= 24 {
			return v
		}
	}
	return DefaultScale
}

// FullTrace returns a trace configuration with every ActorProf feature
// enabled and the paper's two case-study PAPI events.
func FullTrace() trace.Config {
	return trace.Config{
		Logical:    true,
		Physical:   true,
		Overall:    true,
		PAPIEvents: []papi.Event{papi.TOT_INS, papi.LST_INS},
	}
}

// TriangleReport is the outcome of one case-study run.
type TriangleReport struct {
	// Set is the collected ActorProf trace.
	Set *trace.Set
	// Schedule is the recorded what-if schedule (see internal/whatif).
	Schedule *sim.Schedule
	// Triangles is the distributed count; Expected the serial reference.
	Triangles, Expected int64
	// Graph echoes the input (for sweeps that reuse it).
	Graph *graph.Graph
	// DistName is the human-readable distribution name.
	DistName string
}

// Validated reports whether the distributed count matched the serial
// reference (the paper's assertion-based validation).
func (r *TriangleReport) Validated() bool { return r.Triangles == r.Expected }

// RunTriangle executes the paper's Section IV case study: distributed
// triangle counting over an R-MAT graph under the chosen distribution,
// with ActorProf attached. Only the kernel is profiled; graph
// construction and validation are excluded, as in the paper.
func RunTriangle(exp TriangleExperiment) (*TriangleReport, error) {
	if exp.Scale == 0 {
		exp.Scale = EnvScale()
	}
	if exp.EdgeFactor == 0 {
		exp.EdgeFactor = 16
	}
	if exp.NumPEs == 0 {
		exp.NumPEs = 16
	}
	if exp.PEsPerNode == 0 {
		exp.PEsPerNode = 16
	}
	if exp.Dist == "" {
		exp.Dist = DistCyclic
	}
	if !exp.Trace.Any() {
		exp.Trace = FullTrace()
	}
	g := exp.Graph
	if g == nil {
		var err error
		g, err = graph.GenerateRMAT(graph.Graph500(exp.Scale, exp.EdgeFactor, exp.Seed))
		if err != nil {
			return nil, err
		}
	}
	dist, err := exp.Dist.Build(g, exp.NumPEs)
	if err != nil {
		return nil, err
	}

	counts := make([]int64, exp.NumPEs)
	set, sched, err := RunCaptured(Options{
		Machine:     sim.Machine{NumPEs: exp.NumPEs, PEsPerNode: exp.PEsPerNode},
		Trace:       exp.Trace,
		BufferItems: exp.BufferItems,
		Topology:    exp.Topology,
		APIProfile:  exp.APIProfile,
	}, func(rt *actor.Runtime) error {
		got, err := apps.TriangleCount(rt, g, dist)
		if err != nil {
			return err
		}
		counts[rt.PE().Rank()] = got
		return nil
	})
	if err != nil {
		return nil, err
	}
	report := &TriangleReport{
		Set:       set,
		Schedule:  sched,
		Triangles: counts[0],
		Expected:  g.CountTrianglesSerial(),
		Graph:     g,
		DistName:  exp.Dist.Label(),
	}
	for pe, c := range counts {
		if c != report.Triangles {
			return nil, fmt.Errorf("core: PE %d reported %d triangles, PE 0 reported %d",
				pe, c, report.Triangles)
		}
	}
	return report, nil
}
