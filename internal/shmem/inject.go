package shmem

import (
	"runtime"

	"actorprof/internal/fault"
	"actorprof/internal/sim"
)

// This file is the fault-injection seam of the OpenSHMEM layer: every
// hook the chaos harness can perturb funnels through here. With no
// injector installed (the default), each hook is a single nil-interface
// check, so the production paths pay effectively nothing.

// HasFault reports whether a fault injector is installed, letting higher
// layers (conveyor, actor) skip hook-argument computation entirely.
func (p *PE) HasFault() bool { return p.inj != nil }

// fireFault decides and applies a perturbation at a deterministic site:
// delays charge the virtual clock, yields perturb the goroutine
// schedule. Callers pass a program-structure-determined index.
func (p *PE) fireFault(site fault.Site, index, arg, arg2 int64) fault.Decision {
	d := p.inj.Decide(fault.Point{PE: p.rank, Site: site, Index: index, Arg: arg, Arg2: arg2})
	if d.DelayCycles > 0 {
		p.clock.Charge(d.DelayCycles)
		if p.sched != nil {
			p.sched.Append(sim.EvDelay, d.DelayCycles)
		}
	}
	for i := 0; i < d.Yields; i++ {
		runtime.Gosched()
	}
	return d
}

// fireFaultCounted fires a deterministic site indexed by the PE's own
// per-site invocation counter (NBI puts, flushing quiets, barriers -
// sequences fixed by program structure). Only the owning goroutine
// touches the counters.
func (p *PE) fireFaultCounted(site fault.Site, arg, arg2 int64) {
	idx := p.faultIdx[site]
	p.faultIdx[site]++
	p.fireFault(site, idx, arg, arg2)
}

// FaultSched fires a schedule-only site (advance polls, yield points,
// handler dispatch): the decision may only add scheduler yields, never
// touch virtual state, because these sites fire at scheduling-dependent
// rates and charging them would break Virtual-timing determinism.
func (p *PE) FaultSched(site fault.Site) {
	if p.inj == nil {
		return
	}
	idx := p.faultIdx[site]
	p.faultIdx[site]++
	d := p.inj.Decide(fault.Point{PE: p.rank, Site: site, Index: idx})
	for i := 0; i < d.Yields; i++ {
		runtime.Gosched()
	}
}

// FaultSchedArg fires a schedule-only site with a site argument: the
// batched handler-dispatch site fires once per batch and passes the
// batch length, so injectors can key decisions on delivery size. Like
// FaultSched, the decision may only add scheduler yields.
func (p *PE) FaultSchedArg(site fault.Site, arg int64) {
	if p.inj == nil {
		return
	}
	idx := p.faultIdx[site]
	p.faultIdx[site]++
	d := p.inj.Decide(fault.Point{PE: p.rank, Site: site, Index: idx, Arg: arg})
	for i := 0; i < d.Yields; i++ {
		runtime.Gosched()
	}
}

// FaultTransfer fires the conveyor buffer-transfer site, keyed by the
// channel's buffer sequence number (deterministic per channel).
func (p *PE) FaultTransfer(seq int64, target, bufBytes int) {
	if p.inj == nil {
		return
	}
	p.fireFault(fault.SiteTransfer, seq, int64(target), int64(bufBytes))
}

// FaultBufferCap fires the capacity-selection site for a starting buffer
// generation and returns the effective capacity in [1, base].
func (p *PE) FaultBufferCap(seq int64, target, base int) int {
	if p.inj == nil {
		return base
	}
	d := p.fireFault(fault.SiteBufferCap, seq, int64(target), int64(base))
	if d.Capacity <= 0 {
		return base
	}
	if d.Capacity > base {
		return base
	}
	return d.Capacity
}
