package shmem

// This file is the package's static-analysis contract: canonical lists of
// the OpenSHMEM entry points whose calling disciplines the actorvet
// analyzers (internal/analysis) enforce. Keeping the lists next to the
// methods they describe means a new collective or RMA routine is added in
// one review, not rediscovered by the linter months later.

// CollectiveMethods returns the names of *PE methods that are collective:
// every PE must call them the same number of times in the same order, or
// the SPMD program deadlocks (each one contains at least one Barrier).
func CollectiveMethods() []string {
	return []string{
		"Barrier",
		"AllReduceInt64",
		"BroadcastInt64",
		"AllGather",
		"Malloc",
	}
}

// CollectiveFuncs returns the names of package-level functions in this
// package that are collective (they call Malloc underneath).
func CollectiveFuncs() []string {
	return []string{"AllocInt64Array"}
}

// BlockingMethods returns the names of *PE methods that can block the
// calling goroutine until a remote PE acts. Calling any of them from an
// actor message handler deadlocks the runtime: handlers run inside
// conveyor progress, and the remote PE whose action would unblock the
// call may itself be waiting on this PE's progress.
func BlockingMethods() []string {
	// WaitUntilInt64 is the *PE spin-wait; WaitUntil is the typed
	// Int64Array equivalent — both park the caller until a remote store.
	return append(CollectiveMethods(), "WaitUntilInt64", "WaitUntil")
}

// RawOffsetMethods returns, for each *PE (and Int64Array-bypassing) RMA
// method that addresses the symmetric heap by raw byte offset, the index
// of its offset parameter. The typed Int64Array accessors bounds-check
// every access; code that computes offsets by hand (off+8*i) bypasses
// those checks, which the rawoffset analyzer flags.
func RawOffsetMethods() map[string]int {
	return map[string]int{
		"Put":                 1,
		"PutInt64":            1,
		"PutNBI":              1,
		"Get":                 1,
		"GetInt64":            1,
		"AtomicFetchAddInt64": 1,
		"CopyLocal":           1,
		"ReadLocal":           1,
		"LoadInt64":           1,
		"StoreInt64Local":     0,
		"LoadBytesLocal":      0,
		"StoreBytesLocal":     0,
		"WaitUntilInt64":      0,
	}
}
