package shmem

import (
	"sync"

	"actorprof/internal/fault"
	"actorprof/internal/sim"
)

// barrierPoisoned is the panic value await raises on PEs blocked in (or
// arriving at) a poisoned barrier; Run translates it into a secondary
// error behind the crashed PE's own.
type barrierPoisoned struct{}

// barrier is a reusable sense-reversing barrier over n participants, with
// panic poisoning so a crashed PE does not deadlock its peers.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	arrived  int
	gen      uint64
	poisoned bool
	// maxClock accumulates the maximum virtual clock of the arrivers in
	// the current generation so that release can synchronize everyone.
	maxClock int64
	// releaseClock holds the synchronized clock value of the most
	// recently completed generation. It is read under mu by goroutines
	// woken from that generation.
	releaseClock int64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n participants have arrived. It returns the
// maximum clock value observed across the arriving PEs in this
// generation. Panics if the barrier has been poisoned by a crashed PE.
func (b *barrier) await(clock int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic(barrierPoisoned{})
	}
	if clock > b.maxClock {
		b.maxClock = clock
	}
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		max := b.maxClock
		b.maxClock = 0
		// Stash the release clock where waiters of this generation can
		// read it before a new generation overwrites anything.
		b.releaseClock = max
		b.cond.Broadcast()
		return max
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned {
		panic(barrierPoisoned{})
	}
	return b.releaseClock
}

func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Barrier performs shmem_barrier_all: every PE blocks until all PEs
// arrive. On release all virtual clocks are advanced to the maximum
// arriving clock - the BSP "everyone pays for the straggler" property the
// overall profile depends on.
func (p *PE) Barrier() {
	p.prof(RoutineBarrier, 0)
	if p.inj != nil {
		// Injection point: stretching this PE's clock on arrival makes
		// it the straggler whose lateness every peer pays for at the
		// release synchronization below.
		p.fireFaultCounted(fault.SiteBarrier, 0, 0)
	}
	// A barrier also implies quiet: all outstanding puts complete.
	p.quiet()
	// The barrier marker sits after the implied quiet's charge and
	// before the release synchronization: replay computes its own
	// generation maximum at this point, reproducing AdvanceTo exactly.
	p.RecordEvent(sim.EvBarrier, 0)
	max := p.world.barr.await(p.clock.Now())
	p.clock.AdvanceTo(max)
}

// collectives provides broadcast/reduce scratch space. Each collective
// uses the barrier twice (gather then release), with a shared slot array.
type collectives struct {
	mu    sync.Mutex
	slots []int64
	objs  []any
}

func newCollectives(n int) *collectives {
	return &collectives{slots: make([]int64, n), objs: make([]any, n)}
}

// ReduceOp identifies a reduction operator for AllReduceInt64.
type ReduceOp int

// Reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) apply(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		panic("shmem: unknown ReduceOp")
	}
}

// AllReduceInt64 performs a collective reduction over one int64 per PE
// and returns the reduced value on every PE (shmem_int64_sum_to_all and
// friends). Implies a barrier.
func (p *PE) AllReduceInt64(op ReduceOp, v int64) int64 {
	c := p.world.coll
	c.mu.Lock()
	c.slots[p.rank] = v
	c.mu.Unlock()
	p.Barrier()
	c.mu.Lock()
	acc := c.slots[0]
	for _, s := range c.slots[1:] {
		acc = op.apply(acc, s)
	}
	c.mu.Unlock()
	p.Barrier()
	return acc
}

// BroadcastInt64 broadcasts v from PE root to all PEs and returns the
// broadcast value everywhere. Implies barriers.
func (p *PE) BroadcastInt64(root int, v int64) int64 {
	c := p.world.coll
	if p.rank == root {
		c.mu.Lock()
		c.slots[0] = v
		c.mu.Unlock()
	}
	p.Barrier()
	c.mu.Lock()
	out := c.slots[0]
	c.mu.Unlock()
	p.Barrier()
	return out
}

// AllGather collects one arbitrary value per PE and returns the full
// slice, indexed by rank, on every PE. The values must not be mutated
// after the call. Implies barriers. This is a simulation convenience used
// by the trace collector to assemble per-PE results; real SHMEM programs
// would use symmetric buffers.
func (p *PE) AllGather(v any) []any {
	c := p.world.coll
	c.mu.Lock()
	c.objs[p.rank] = v
	c.mu.Unlock()
	p.Barrier()
	c.mu.Lock()
	out := make([]any, len(c.objs))
	copy(out, c.objs)
	c.mu.Unlock()
	p.Barrier()
	return out
}
