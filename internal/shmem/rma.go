package shmem

import (
	"encoding/binary"

	"actorprof/internal/fault"
	"actorprof/internal/sim"
)

// Put is a blocking one-sided put (shmem_putmem): data is visible at the
// target when Put returns. The PE's clock is charged the transfer cost
// (network for inter-node targets, shared-memory copy for intra-node).
func (p *PE) Put(target, offset int, data []byte) {
	p.prof(RoutinePut, len(data))
	p.chargeTransfer(target, len(data))
	p.rawWrite(target, offset, data)
}

// prof records an API-profile event when profiling is enabled.
func (p *PE) prof(r Routine, n int) {
	if prof := p.world.cfg.Profile; prof != nil {
		prof.record(p.rank, r, n)
	}
}

// PutInt64 is a blocking 8-byte put, the shape Conveyors uses for its
// nonblock_progress signaling word (shmem_put after shmem_quiet).
func (p *PE) PutInt64(target, offset int, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	p.Put(target, offset, b[:])
}

// PutNBI is a non-blocking put (shmem_putmem_nbi). The write is buffered
// at the initiator and becomes visible at the target only after Quiet (or
// Fence). This is stricter than the OpenSHMEM memory model - real NBI
// puts may land at any time - but it is exactly the guarantee correct
// protocols rely on, so running under the strict model surfaces protocol
// bugs instead of hiding them behind eager delivery.
//
// The transfer cost is charged immediately (the NIC starts streaming when
// the put is issued).
func (p *PE) PutNBI(target, offset int, data []byte) {
	p.prof(RoutinePutNBI, len(data))
	if p.inj != nil {
		// Injection point: a delayed NBI issue models a NIC that starts
		// streaming late. Indexed by the PE's NBI-put ordinal, which is
		// fixed by program structure.
		p.fireFaultCounted(fault.SitePutNBI, int64(target), int64(len(data)))
	}
	p.chargeTransfer(target, len(data))
	cp := p.getNBIBuf(len(data))
	copy(cp, data)
	p.pendingNBI = append(p.pendingNBI, pendingWrite{target: target, offset: offset, data: cp})
	p.nbiBytes += len(data)
}

// PendingNBI returns the number of buffered non-blocking puts (useful for
// tests and for the profiler's bookkeeping).
func (p *PE) PendingNBI() int { return len(p.pendingNBI) }

// Quiet (shmem_quiet) completes all outstanding non-blocking puts issued
// by this PE, to *all* destinations, making them visible remotely. The
// clock is charged the quiet latency when there was anything to wait for.
func (p *PE) Quiet() {
	p.prof(RoutineQuiet, 0)
	p.quiet()
}

// quiet is the unrecorded implementation shared with the operations
// that imply a quiet (fence, barrier); a pshmem-style wrapper sees only
// the routine the program called.
func (p *PE) quiet() {
	if len(p.pendingNBI) > 0 {
		if p.inj != nil {
			// Injection point: a stalled quiet delays the completion -
			// and hence remote visibility - of every buffered put, in
			// virtual time. Only flushing quiets fire, so the index is
			// program-determined.
			p.fireFaultCounted(fault.SiteQuiet, int64(len(p.pendingNBI)), int64(p.nbiBytes))
		}
		p.ChargeEvent(sim.EvQuiet, int64(len(p.pendingNBI)))
		for i, w := range p.pendingNBI {
			p.rawWrite(w.target, w.offset, w.data)
			// rawWrite copied the staging buffer into the target heap,
			// so it can be recycled for future puts.
			p.putNBIBuf(w.data)
			p.pendingNBI[i].data = nil
		}
		p.pendingNBI = p.pendingNBI[:0]
		p.nbiBytes = 0
	}
}

// Fence (shmem_fence) orders puts per destination. The simulation's
// buffered-delivery model cannot reorder writes to a single destination,
// so Fence only needs to flush, exactly like Quiet, but charges nothing
// extra beyond quiet latency when work is outstanding.
func (p *PE) Fence() {
	p.prof(RoutineFence, 0)
	p.quiet()
}

// Get is a blocking one-sided get (shmem_getmem). Charged like a
// round-trip transfer.
func (p *PE) Get(target, offset int, buf []byte) {
	p.prof(RoutineGet, len(buf))
	p.chargeTransfer(target, len(buf))
	p.rawRead(target, offset, buf)
}

// GetInt64 is a blocking 8-byte get.
func (p *PE) GetInt64(target, offset int) int64 {
	var b [8]byte
	p.Get(target, offset, b[:])
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// AtomicFetchAddInt64 performs a remote fetch-and-add
// (shmem_int64_atomic_fetch_add) and returns the previous value.
func (p *PE) AtomicFetchAddInt64(target, offset int, delta int64) int64 {
	p.prof(RoutineAtomicFetchAdd, 8)
	p.chargeTransfer(target, 8)
	t := p.heapOf(target)
	t.heapMu.Lock()
	t.ensure(offset, 8)
	old := int64(binary.LittleEndian.Uint64(t.heap[offset:]))
	binary.LittleEndian.PutUint64(t.heap[offset:], uint64(old+delta))
	t.heapMu.Unlock()
	return old
}

// CopyLocal performs an intra-node direct copy into a same-node PE's heap
// through shmem_ptr semantics: the target's symmetric memory is mapped
// into this PE's address space and written with memcpy. Panics if target
// is on a different node, as shmem_ptr would return NULL there.
func (p *PE) CopyLocal(target, offset int, data []byte) {
	if !p.SameNode(target) {
		panic("shmem: CopyLocal to a PE on a different node (shmem_ptr is NULL)")
	}
	p.prof(RoutineCopyLocal, len(data))
	p.ChargeEvent(sim.EvLocalCopy, int64(len(data)))
	p.rawWrite(target, offset, data)
}

// ReadLocal reads from a same-node PE's heap through shmem_ptr semantics.
func (p *PE) ReadLocal(target, offset int, buf []byte) {
	if !p.SameNode(target) {
		panic("shmem: ReadLocal from a PE on a different node (shmem_ptr is NULL)")
	}
	p.prof(RoutineReadLocal, len(buf))
	p.ChargeEvent(sim.EvLocalCopy, int64(len(buf)))
	p.rawRead(target, offset, buf)
}

// WaitCmp is the comparison operator for WaitUntilInt64.
type WaitCmp int

// Comparison operators (shmem_wait_until's SHMEM_CMP_*).
const (
	CmpEq WaitCmp = iota
	CmpNe
	CmpGt
	CmpGe
	CmpLt
	CmpLe
)

func (c WaitCmp) holds(a, b int64) bool {
	switch c {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpGt:
		return a > b
	case CmpGe:
		return a >= b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	default:
		panic("shmem: unknown WaitCmp")
	}
}

// WaitUntilInt64 blocks until the int64 in this PE's own heap at offset
// satisfies cmp against value (shmem_wait_until). The word is typically
// written by a remote PE's put. Yields between polls so peers can run.
func (p *PE) WaitUntilInt64(offset int, cmp WaitCmp, value int64) int64 {
	for {
		v := p.LoadInt64(p.rank, offset)
		if cmp.holds(v, value) {
			return v
		}
		p.Yield()
	}
}

// chargeTransfer charges the cost of moving n bytes to target.
func (p *PE) chargeTransfer(target, n int) {
	if p.SameNode(target) {
		p.ChargeEvent(sim.EvLocalCopy, int64(n))
	} else {
		p.ChargeEvent(sim.EvNetworkPut, int64(n))
	}
}
