package shmem

import "math/bits"

// NBI staging-buffer recycling. PutNBI must snapshot the caller's data
// until Quiet delivers it; on the conveyor hot path that is two puts
// (payload + length word) per shipped buffer, so without reuse the
// staging copies dominate the runtime's allocation profile. Buffers are
// pooled per PE (only the owning goroutine touches them) in power-of-two
// size classes, bounded so a burst cannot pin unbounded memory.
const (
	// nbiMaxClass caps pooled buffers at 1<<nbiMaxClass bytes; larger
	// staging copies are allocated and dropped as before.
	nbiMaxClass = 20
	// nbiMaxFree bounds the number of retained buffers per class.
	nbiMaxFree = 64
)

// nbiClass returns the power-of-two size class for n bytes: the smallest
// c with 1<<c >= n.
func nbiClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// getNBIBuf returns an n-byte staging buffer, recycled when possible.
func (p *PE) getNBIBuf(n int) []byte {
	cls := nbiClass(n)
	if cls <= nbiMaxClass {
		if l := p.nbiFree[cls]; len(l) > 0 {
			b := l[len(l)-1]
			p.nbiFree[cls] = l[:len(l)-1]
			return b[:n]
		}
		return make([]byte, n, 1<<cls)
	}
	return make([]byte, n)
}

// putNBIBuf returns a staging buffer to its class's free list. Buffers
// whose capacity is not an exact pooled class (allocated before the pool
// existed, or oversized) are dropped to the garbage collector.
func (p *PE) putNBIBuf(b []byte) {
	c := cap(b)
	if c == 0 || bits.OnesCount(uint(c)) != 1 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	if cls > nbiMaxClass || len(p.nbiFree[cls]) >= nbiMaxFree {
		return
	}
	p.nbiFree[cls] = append(p.nbiFree[cls], b[:0])
}
