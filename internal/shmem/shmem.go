// Package shmem implements a simulated OpenSHMEM runtime: the PGAS SPMD
// substrate that the paper's software stack (Conveyors, HClib-Actor,
// ActorProf) is built on.
//
// The simulation runs every processing element (PE) as a goroutine inside
// one process. PEs are grouped into simulated cluster nodes (sim.Machine);
// each PE owns a symmetric heap, and the usual OpenSHMEM operations are
// provided: collective symmetric allocation, blocking and non-blocking
// one-sided puts, gets, quiet/fence, barriers, broadcasts, reductions, and
// shmem_ptr-style direct intra-node access.
//
// Differences from a real OpenSHMEM are intentional and documented:
//
//   - Data movement costs are charged to a per-PE virtual cycle clock
//     (sim.Clock) instead of being borne by real NICs. Inter-node puts pay
//     network latency + per-byte cost; intra-node copies pay a much
//     smaller shared-memory cost. This preserves the relative cost
//     structure the paper's overall-breakdown profile (Figures 12-13)
//     depends on.
//   - Non-blocking puts (PutNBI) are buffered at the initiator and only
//     become visible at the target after Quiet, which is *stricter* than
//     the OpenSHMEM memory model (real NBI puts may land earlier) but is
//     exactly the guarantee correct programs such as Conveyors rely on.
//     Running under the strict model means protocol bugs surface instead
//     of hiding behind eager delivery.
//   - Barriers synchronize the virtual clocks of all participants to the
//     maximum, modelling the BSP property that a synchronization point
//     makes every PE pay for the slowest one.
package shmem

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"actorprof/internal/fault"
	"actorprof/internal/sim"
)

// Config describes a simulated SPMD job.
type Config struct {
	// Machine is the PE/node layout. Required.
	Machine sim.Machine
	// Cost is the data-movement cost model. Zero value means
	// sim.DefaultCostModel().
	Cost sim.CostModel
	// Timing selects Virtual (deterministic, default) or Hybrid
	// (adds real tsc cycles) clock advancement.
	Timing sim.TimingMode
	// Profile, when non-nil, receives per-PE counts of every OpenSHMEM
	// routine invocation - the pshmem-style profiling interface the
	// paper's Section V-B proposes for capturing non-blocking routines.
	Profile *APIProfile
	// Fault, when non-nil, perturbs the run at the runtime's injection
	// hooks (delays, stragglers, capacity shrinks, schedule shaking).
	// See package fault. Nil means every hook is a no-op.
	Fault fault.Injector
	// Schedule, when non-nil, records every clock charge and runtime
	// region marker per PE for the what-if engine (internal/whatif).
	// Create it with sim.NewScheduleRecorder using this config's machine,
	// timing, and post-default cost model.
	Schedule *sim.ScheduleRecorder
}

func (c Config) withDefaults() Config {
	if c.Cost == (sim.CostModel{}) {
		c.Cost = sim.DefaultCostModel()
	}
	return c
}

// World is the shared state of one SPMD run: all PE heaps, the symmetric
// allocator, and synchronization structures. A World is created by Run
// and is only valid for the duration of the body functions.
type World struct {
	cfg  Config
	pes  []*PE
	barr *barrier
	coll *collectives

	// allocMu guards the symmetric break pointer. Allocation itself is
	// collective (all PEs call Malloc in the same order), but the heap
	// growth must still be applied to every PE's heap under its lock.
	allocMu sync.Mutex
	brk     int

	// shared holds world-wide singletons created by Shared. Higher
	// layers use it for state that in a real job would live in the
	// symmetric heap of a designated PE (e.g. termination boards) but
	// that the simulation keeps as plain shared memory.
	sharedMu sync.Mutex
	shared   map[any]any

	// failed flips when any PE panics. Barrier waiters are unblocked by
	// barrier poisoning, but PEs spinning in progress loops (conveyor
	// Advance, Quiet landing-zone waits, WaitUntil polls) never reach a
	// barrier; they observe this flag at their Yield preemption point and
	// abort instead of spinning on a peer that will never answer.
	failed     atomic.Bool
	failedRank atomic.Int64 // rank of the first crashed PE
}

// Failed reports whether any PE of this world has crashed.
func (w *World) Failed() bool { return w.failed.Load() }

// fail records the first crashed PE and raises the world failure flag.
func (w *World) fail(rank int) {
	w.failedRank.CompareAndSwap(-1, int64(rank))
	w.failed.Store(true)
}

// peerAbort is the panic value Yield raises on surviving PEs once the
// world has failed; Run translates it into a secondary error so the
// root-cause panic stays the error Run returns.
type peerAbort struct{ crashed int64 }

// Shared returns the world-wide singleton for key, creating it with
// create on first use. Safe for concurrent use by all PEs.
func (w *World) Shared(key any, create func() any) any {
	w.sharedMu.Lock()
	defer w.sharedMu.Unlock()
	if w.shared == nil {
		w.shared = make(map[any]any)
	}
	if v, ok := w.shared[key]; ok {
		return v
	}
	v := create()
	w.shared[key] = v
	return v
}

// NumPEs returns the number of PEs in the world.
func (w *World) NumPEs() int { return w.cfg.Machine.NumPEs }

// Machine returns the machine layout.
func (w *World) Machine() sim.Machine { return w.cfg.Machine }

// Cost returns the cost model in effect.
func (w *World) Cost() sim.CostModel { return w.cfg.Cost }

// PE is the per-processing-element handle passed to the SPMD body. All
// methods must be called from the PE's own goroutine unless documented
// otherwise.
type PE struct {
	world *World
	rank  int
	clock *sim.Clock

	// sched is this PE's schedule log when the run records one (see
	// Config.Schedule); nil otherwise. Only the owning goroutine appends.
	sched *sim.PELog

	// inj is the fault injector (nil for unperturbed runs); faultIdx
	// holds the per-site invocation counters that key deterministic
	// injection decisions. Only the owning goroutine touches them.
	inj      fault.Injector
	faultIdx [fault.NumSites]int64

	heapMu sync.Mutex
	heap   []byte

	// pendingNBI holds writes issued by PutNBI that have not yet been
	// flushed by Quiet/Fence. Only the owning goroutine touches it.
	pendingNBI []pendingWrite
	// nbiBytes is the total payload bytes buffered in pendingNBI.
	nbiBytes int
	// nbiFree recycles PutNBI staging buffers by power-of-two size
	// class (see pool.go). Only the owning goroutine touches it.
	nbiFree [nbiMaxClass + 1][][]byte

	// allocCursor is this PE's private symmetric-heap break pointer.
	// Every PE computes identical offsets from the same collective
	// Malloc sequence, as with a real symmetric heap.
	allocCursor int
}

type pendingWrite struct {
	target int
	offset int
	data   []byte
}

// Rank returns the PE's global rank (0-based).
func (p *PE) Rank() int { return p.rank }

// NumPEs returns the total number of PEs (shmem_n_pes).
func (p *PE) NumPEs() int { return p.world.NumPEs() }

// Node returns the simulated cluster node hosting this PE.
func (p *PE) Node() int { return p.world.cfg.Machine.NodeOf(p.rank) }

// NodeOf returns the node hosting PE rank r.
func (p *PE) NodeOf(r int) int { return p.world.cfg.Machine.NodeOf(r) }

// SameNode reports whether PE r shares a node with this PE.
func (p *PE) SameNode(r int) bool { return p.world.cfg.Machine.SameNode(p.rank, r) }

// World returns the enclosing world.
func (p *PE) World() *World { return p.world }

// Clock returns the PE's virtual cycle clock.
func (p *PE) Clock() *sim.Clock { return p.clock }

// Charge advances this PE's clock by n cycles. It is used by
// applications to account simulated work that has no cost-model event
// kind; the charge is recorded as a raw-cycle event so replays stay
// exact (but what-if cost perturbations cannot rescale it).
func (p *PE) Charge(n int64) {
	p.clock.Charge(n)
	if p.sched != nil && n > 0 {
		p.sched.Append(sim.EvRaw, n)
	}
}

// ChargeEvent advances this PE's clock by the cost model's price for
// the event and records it in the schedule log when one is attached.
// All runtime-internal charge sites (shmem, conveyor, actor) go through
// here (or ChargeInstr) so a recorded schedule can be re-priced under a
// perturbed cost model.
func (p *PE) ChargeEvent(kind sim.EventKind, arg int64) {
	p.clock.Charge(p.world.cfg.Cost.PriceEvent(kind, arg))
	if p.sched != nil {
		p.sched.Append(kind, arg)
	}
}

// ChargeInstr charges pre-priced instruction cycles, recording the
// instruction count. The cycles must equal Cost().InstructionCost(ins);
// callers on the message hot path precompute that product once per
// batch instead of re-deriving it per message. (The what-if engine
// re-prices the recorded count through the same InstructionCost.)
func (p *PE) ChargeInstr(cycles, ins int64) {
	p.clock.Charge(cycles)
	if p.sched != nil {
		p.sched.Append(sim.EvInstr, ins)
	}
}

// RecordEvent appends a zero-cost region marker (barrier, finish
// window, main-timer or handler transition) to the schedule log when
// one is attached. The runtime calls it exactly where the profiling
// state machine transitions fire, so replay reproduces attribution
// bit-for-bit.
func (p *PE) RecordEvent(kind sim.EventKind, arg int64) {
	if p.sched != nil {
		p.sched.Append(kind, arg)
	}
}

// Recording reports whether this run records a what-if schedule.
func (p *PE) Recording() bool { return p.sched != nil }

// Yield cedes the processor to other PE goroutines. Spin loops in the
// runtime call this to keep the simulation live on few OS threads. It is
// a documented preemption point: a fault injector may add extra yields
// here to perturb the goroutine interleaving, and it is where a PE
// observes that a peer has crashed (the world failure flag) and aborts
// instead of spinning forever on a dead partner.
func (p *PE) Yield() {
	if p.world.failed.Load() {
		panic(peerAbort{crashed: p.world.failedRank.Load()})
	}
	if p.inj != nil {
		p.FaultSched(fault.SiteYield)
	}
	runtime.Gosched()
}

// Run executes body as an SPMD program: one goroutine per PE, all started
// together, and waits for all of them to return. A panic in any PE is
// captured and returned as an error (after all other PEs finish or panic).
func Run(cfg Config, body func(pe *PE)) error {
	cfg = cfg.withDefaults()
	if err := cfg.Machine.Validate(); err != nil {
		return err
	}
	n := cfg.Machine.NumPEs
	w := &World{
		cfg:  cfg,
		pes:  make([]*PE, n),
		barr: newBarrier(n),
		coll: newCollectives(n),
	}
	w.failedRank.Store(-1)
	skewer, _ := cfg.Fault.(fault.ClockSkewer)
	for i := 0; i < n; i++ {
		w.pes[i] = &PE{
			world: w,
			rank:  i,
			clock: sim.NewClock(cfg.Timing),
			inj:   cfg.Fault,
		}
		if skewer != nil {
			w.pes[i].clock.SetSkewPercent(skewer.ClockSkewPercent(i))
		}
		if cfg.Schedule != nil {
			w.pes[i].sched = cfg.Schedule.PE(i)
			w.pes[i].sched.Skew = w.pes[i].clock.SkewPercent()
		}
	}

	errs := make([]error, n)
	secondary := make([]bool, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		pe := w.pes[i]
		go func() {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				switch a := r.(type) {
				case peerAbort:
					// This PE did not crash: it bailed out of a spin loop
					// because PE a.crashed did. Record a secondary error so
					// Run still reports the root cause first.
					errs[pe.rank] = fmt.Errorf("shmem: PE %d aborted: PE %d crashed",
						pe.rank, a.crashed)
					secondary[pe.rank] = true
				case barrierPoisoned:
					errs[pe.rank] = fmt.Errorf("shmem: PE %d aborted: barrier poisoned by a crashed PE",
						pe.rank)
					secondary[pe.rank] = true
				default:
					buf := make([]byte, 16<<10)
					sz := runtime.Stack(buf, false)
					errs[pe.rank] = fmt.Errorf("shmem: PE %d panicked: %v\n%s",
						pe.rank, r, buf[:sz])
					// Unblock the peers: poison the barrier for PEs waiting
					// there, and raise the world failure flag for PEs
					// spinning in progress loops (they observe it in Yield)
					// so all of them fail fast instead of deadlocking.
					w.fail(pe.rank)
					w.barr.poison()
				}
			}()
			body(pe)
		}()
	}
	wg.Wait()
	var firstSecondary error
	for rank, err := range errs {
		if err == nil {
			continue
		}
		if !secondary[rank] {
			return err
		}
		if firstSecondary == nil {
			firstSecondary = err
		}
	}
	return firstSecondary
}
