package shmem

import "testing"

func TestInt64ArrayLocalOps(t *testing.T) {
	run(t, 2, 2, func(pe *PE) {
		a := AllocInt64Array(pe, 10)
		if a.Len() != 10 {
			t.Errorf("Len = %d", a.Len())
		}
		for i := 0; i < 10; i++ {
			if a.Get(i) != 0 {
				t.Errorf("fresh array element %d = %d", i, a.Get(i))
			}
			a.Set(i, int64(i*i))
		}
		local := a.Local()
		for i, v := range local {
			if v != int64(i*i) {
				t.Errorf("Local[%d] = %d", i, v)
			}
		}
		pe.Barrier()
	})
}

func TestInt64ArrayRemoteOps(t *testing.T) {
	run(t, 4, 2, func(pe *PE) {
		a := AllocInt64Array(pe, 4)
		pe.Barrier()
		next := (pe.Rank() + 1) % 4
		a.PutRemote(next, 0, int64(100+pe.Rank()))
		a.AddRemote(next, 1, int64(pe.Rank()+1))
		pe.Barrier()
		prev := (pe.Rank() + 3) % 4
		if got := a.Get(0); got != int64(100+prev) {
			t.Errorf("PE %d element 0 = %d, want %d", pe.Rank(), got, 100+prev)
		}
		if got := a.Get(1); got != int64(prev+1) {
			t.Errorf("PE %d element 1 = %d, want %d", pe.Rank(), got, prev+1)
		}
		if got := a.GetRemote(next, 0); got != int64(100+pe.Rank()) {
			t.Errorf("GetRemote = %d", got)
		}
		pe.Barrier()
	})
}

func TestInt64ArrayWaitUntil(t *testing.T) {
	run(t, 2, 2, func(pe *PE) {
		a := AllocInt64Array(pe, 1)
		pe.Barrier()
		if pe.Rank() == 0 {
			if got := a.WaitUntil(0, CmpEq, 42); got != 42 {
				t.Errorf("WaitUntil = %d", got)
			}
		} else {
			a.PutRemote(0, 0, 42)
		}
		pe.Barrier()
	})
}

func TestInt64ArrayBoundsPanic(t *testing.T) {
	run(t, 1, 1, func(pe *PE) {
		a := AllocInt64Array(pe, 3)
		defer func() {
			if recover() == nil {
				t.Error("out-of-range access should panic")
			}
		}()
		a.Get(3)
	})
}

func TestAllocInt64ArraySymmetric(t *testing.T) {
	offs := make([]int, 4)
	run(t, 4, 2, func(pe *PE) {
		a := AllocInt64Array(pe, 5)
		offs[pe.Rank()] = a.Offset()
		pe.Barrier()
	})
	for i := 1; i < 4; i++ {
		if offs[i] != offs[0] {
			t.Fatalf("offsets differ: %v", offs)
		}
	}
}
