package shmem

import (
	"encoding/binary"
	"fmt"
)

// align rounds n up to an 8-byte boundary so that symmetric objects never
// share a word, keeping the Int64 accessors self-consistent.
func align(n int) int { return (n + 7) &^ 7 }

// Malloc is the collective symmetric allocator (shmem_malloc): every PE
// must call it the same number of times with the same sizes, and all PEs
// receive the same heap offset. The returned offset addresses n bytes of
// zeroed storage in every PE's heap.
func (p *PE) Malloc(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("shmem: Malloc with negative size %d on PE %d", n, p.rank))
	}
	// The first PE through extends the break pointer; everyone else
	// validates nothing (real SHMEM trusts the program). Growth of each
	// heap happens lazily under the heap lock in ensure().
	p.world.allocMu.Lock()
	if p.world.brk == 0 {
		p.world.brk = 8 // offset 0 is reserved so that 0 can mean "nil"
	}
	// Each PE calls Malloc; only one extension per collective call must
	// happen. Track per-PE allocation cursors.
	if p.allocCursor == 0 {
		p.allocCursor = 8
	}
	off := p.allocCursor
	p.allocCursor = align(p.allocCursor + n)
	if p.allocCursor > p.world.brk {
		p.world.brk = p.allocCursor
	}
	p.world.allocMu.Unlock()

	// shmem_malloc is a collective with an implicit barrier: no PE may
	// proceed until all PEs have allocated (and thus grown their heaps).
	p.Barrier()
	return off
}

// allocCursor is kept on the PE (not the world) so that every PE computes
// identical offsets independently, as with a real symmetric heap.
// (Declared here, near Malloc, for readability.)

// ensure grows the heap (under lock) so offset+size is addressable.
func (p *PE) ensure(offset, size int) {
	need := offset + size
	if need <= len(p.heap) {
		return
	}
	grown := make([]byte, align(need*2))
	copy(grown, p.heap)
	p.heap = grown
}

// heapOf returns the PE handle for rank r, panicking on bad ranks.
func (p *PE) heapOf(r int) *PE {
	if r < 0 || r >= p.world.NumPEs() {
		panic(fmt.Sprintf("shmem: PE %d addressed invalid rank %d (npes=%d)",
			p.rank, r, p.world.NumPEs()))
	}
	return p.world.pes[r]
}

// rawWrite copies data into PE target's heap at offset, with locking.
// It performs the data movement only; cost accounting is the caller's
// responsibility.
func (p *PE) rawWrite(target, offset int, data []byte) {
	t := p.heapOf(target)
	t.heapMu.Lock()
	t.ensure(offset, len(data))
	copy(t.heap[offset:], data)
	t.heapMu.Unlock()
}

// rawRead copies from PE target's heap at offset into buf, with locking.
func (p *PE) rawRead(target, offset int, buf []byte) {
	t := p.heapOf(target)
	t.heapMu.Lock()
	t.ensure(offset, len(buf))
	copy(buf, t.heap[offset:offset+len(buf)])
	t.heapMu.Unlock()
}

// LoadInt64 reads an int64 from PE target's heap. When target is this PE
// or a same-node PE this is the moral equivalent of dereferencing
// shmem_ptr; polling loops use it. No clock charge is applied: polling
// costs are charged by the caller (see sim.CostModel.PollCycles).
func (p *PE) LoadInt64(target, offset int) int64 {
	var b [8]byte
	p.rawRead(target, offset, b[:])
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// StoreInt64Local writes an int64 into this PE's own heap (a plain local
// store, no cost).
func (p *PE) StoreInt64Local(offset int, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	p.rawWrite(p.rank, offset, b[:])
}

// LoadBytesLocal reads n bytes from this PE's own heap into buf.
func (p *PE) LoadBytesLocal(offset int, buf []byte) {
	p.rawRead(p.rank, offset, buf)
}

// StoreBytesLocal writes data into this PE's own heap.
func (p *PE) StoreBytesLocal(offset int, data []byte) {
	p.rawWrite(p.rank, offset, data)
}
