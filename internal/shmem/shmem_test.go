package shmem

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"actorprof/internal/sim"
)

func machine(npes, perNode int) sim.Machine {
	return sim.Machine{NumPEs: npes, PEsPerNode: perNode}
}

func run(t *testing.T, npes, perNode int, body func(pe *PE)) {
	t.Helper()
	err := Run(Config{Machine: machine(npes, perNode)}, body)
	if err != nil {
		t.Fatalf("Run failed: %v", err)
	}
}

func TestRunLaunchesAllPEs(t *testing.T) {
	var count atomic.Int64
	seen := make([]atomic.Bool, 8)
	run(t, 8, 4, func(pe *PE) {
		count.Add(1)
		seen[pe.Rank()].Store(true)
	})
	if got := count.Load(); got != 8 {
		t.Fatalf("expected 8 PEs to run, got %d", got)
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Errorf("PE %d never ran", i)
		}
	}
}

func TestRunValidatesMachine(t *testing.T) {
	if err := Run(Config{Machine: machine(7, 4)}, func(*PE) {}); err == nil {
		t.Fatal("expected error for NumPEs not divisible by PEsPerNode")
	}
	if err := Run(Config{Machine: machine(0, 1)}, func(*PE) {}); err == nil {
		t.Fatal("expected error for zero PEs")
	}
}

func TestRunReportsPanics(t *testing.T) {
	err := Run(Config{Machine: machine(4, 4)}, func(pe *PE) {
		if pe.Rank() == 2 {
			panic("boom")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "PE 2 panicked") {
		t.Fatalf("expected PE 2 panic error, got %v", err)
	}
}

func TestPanicPoisonsBarrier(t *testing.T) {
	// A PE panicking must not leave the others deadlocked in Barrier.
	err := Run(Config{Machine: machine(4, 4)}, func(pe *PE) {
		if pe.Rank() == 0 {
			panic("early exit")
		}
		pe.Barrier()
	})
	if err == nil {
		t.Fatal("expected an error from the panicking PE")
	}
	// The root-cause panic, not a secondary barrier-poisoned abort, must
	// be the error Run reports.
	if !strings.Contains(err.Error(), "PE 0 panicked") {
		t.Fatalf("expected the root-cause PE 0 panic, got %v", err)
	}
}

func TestPeerCrashUnblocksSpinLoops(t *testing.T) {
	// Regression: a crashed PE used to poison only the barrier. Peers
	// spinning in progress loops (the conveyor Advance/Quiet shape:
	// Yield between polls of a word only the dead PE would write) never
	// reach a barrier and hung forever. The world failure flag observed
	// in Yield must make them fail fast.
	done := make(chan error, 1)
	go func() {
		done <- Run(Config{Machine: machine(4, 4)}, func(pe *PE) {
			off := pe.Malloc(8)
			if pe.Rank() == 0 {
				panic("crash mid-exchange")
			}
			// Never satisfied: only PE 0 would have written this word.
			pe.WaitUntilInt64(off, CmpNe, 0)
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "PE 0 panicked") {
			t.Fatalf("expected the PE 0 panic as root cause, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung: peer crash did not unblock spin loops")
	}
}

func TestNodeTopology(t *testing.T) {
	run(t, 8, 4, func(pe *PE) {
		wantNode := pe.Rank() / 4
		if pe.Node() != wantNode {
			t.Errorf("PE %d: Node() = %d, want %d", pe.Rank(), pe.Node(), wantNode)
		}
		if !pe.SameNode(pe.Rank()) {
			t.Errorf("PE %d not on its own node", pe.Rank())
		}
		other := (pe.Rank() + 4) % 8
		if pe.SameNode(other) {
			t.Errorf("PE %d should not share a node with PE %d", pe.Rank(), other)
		}
	})
}

func TestMallocSymmetricOffsets(t *testing.T) {
	offs := make([]int, 6)
	offs2 := make([]int, 6)
	run(t, 6, 3, func(pe *PE) {
		offs[pe.Rank()] = pe.Malloc(100)
		offs2[pe.Rank()] = pe.Malloc(8)
	})
	for i := 1; i < 6; i++ {
		if offs[i] != offs[0] || offs2[i] != offs2[0] {
			t.Fatalf("symmetric offsets differ across PEs: %v / %v", offs, offs2)
		}
	}
	if offs2[0] <= offs[0] {
		t.Fatalf("second allocation (%d) must follow first (%d)", offs2[0], offs[0])
	}
	if offs2[0]-offs[0] < 100 {
		t.Fatalf("allocations overlap: first at %d (100 bytes), second at %d", offs[0], offs2[0])
	}
}

func TestBlockingPutIsImmediatelyVisible(t *testing.T) {
	run(t, 4, 2, func(pe *PE) {
		off := pe.Malloc(8)
		pe.Barrier()
		if pe.Rank() == 0 {
			for target := 0; target < pe.NumPEs(); target++ {
				pe.PutInt64(target, off, int64(100+target))
			}
		}
		pe.Barrier()
		if got := pe.LoadInt64(pe.Rank(), off); got != int64(100+pe.Rank()) {
			t.Errorf("PE %d: got %d, want %d", pe.Rank(), got, 100+pe.Rank())
		}
	})
}

func TestPutNBIInvisibleUntilQuiet(t *testing.T) {
	// The strict delivery model buffers non-blocking puts at the
	// initiator: the target's memory must not change until Quiet. The
	// check runs entirely on the initiating PE so it needs no cross-PE
	// synchronization (which would itself imply a quiet).
	run(t, 2, 2, func(pe *PE) {
		off := pe.Malloc(8)
		pe.Barrier()
		if pe.Rank() == 0 {
			pe.PutNBI(1, off, []byte{1, 2, 3, 4, 5, 6, 7, 8})
			if pe.PendingNBI() != 1 {
				t.Errorf("PendingNBI = %d, want 1", pe.PendingNBI())
			}
			if got := pe.LoadInt64(1, off); got != 0 {
				t.Errorf("NBI put visible before quiet: %d", got)
			}
			pe.Quiet()
			if pe.PendingNBI() != 0 {
				t.Errorf("PendingNBI after Quiet = %d, want 0", pe.PendingNBI())
			}
			if got := pe.LoadInt64(1, off); got == 0 {
				t.Error("NBI put not visible after quiet")
			}
		}
		pe.Barrier()
		if pe.Rank() == 1 {
			if got := pe.LoadInt64(1, off); got == 0 {
				t.Error("NBI put not visible at target after sender's quiet+barrier")
			}
		}
	})
}

func TestBarrierImpliesQuiet(t *testing.T) {
	run(t, 2, 2, func(pe *PE) {
		off := pe.Malloc(8)
		pe.Barrier()
		if pe.Rank() == 0 {
			pe.PutNBI(1, off, []byte{9, 0, 0, 0, 0, 0, 0, 0})
		}
		pe.Barrier()
		if pe.Rank() == 1 {
			if got := pe.LoadInt64(1, off); got != 9 {
				t.Errorf("after barrier, got %d want 9", got)
			}
		}
	})
}

func TestGetRoundTrip(t *testing.T) {
	run(t, 4, 2, func(pe *PE) {
		off := pe.Malloc(8)
		pe.StoreInt64Local(off, int64(pe.Rank()*11))
		pe.Barrier()
		next := (pe.Rank() + 1) % pe.NumPEs()
		if got := pe.GetInt64(next, off); got != int64(next*11) {
			t.Errorf("PE %d GetInt64(%d) = %d, want %d", pe.Rank(), next, got, next*11)
		}
	})
}

func TestAtomicFetchAdd(t *testing.T) {
	var final int64
	run(t, 8, 4, func(pe *PE) {
		off := pe.Malloc(8)
		pe.Barrier()
		for i := 0; i < 100; i++ {
			pe.AtomicFetchAddInt64(0, off, 1)
		}
		pe.Barrier()
		if pe.Rank() == 0 {
			final = pe.LoadInt64(0, off)
		}
	})
	if final != 800 {
		t.Fatalf("atomic sum = %d, want 800", final)
	}
}

func TestAllReduce(t *testing.T) {
	run(t, 6, 3, func(pe *PE) {
		r := int64(pe.Rank())
		if got := pe.AllReduceInt64(OpSum, r); got != 15 {
			t.Errorf("sum = %d, want 15", got)
		}
		if got := pe.AllReduceInt64(OpMax, r); got != 5 {
			t.Errorf("max = %d, want 5", got)
		}
		if got := pe.AllReduceInt64(OpMin, r+10); got != 10 {
			t.Errorf("min = %d, want 10", got)
		}
	})
}

func TestBroadcast(t *testing.T) {
	run(t, 4, 2, func(pe *PE) {
		v := int64(-1)
		if pe.Rank() == 3 {
			v = 42
		}
		if got := pe.BroadcastInt64(3, v); got != 42 {
			t.Errorf("PE %d broadcast got %d, want 42", pe.Rank(), got)
		}
	})
}

func TestAllGather(t *testing.T) {
	run(t, 4, 2, func(pe *PE) {
		vals := pe.AllGather(pe.Rank() * 7)
		for i, v := range vals {
			if v.(int) != i*7 {
				t.Errorf("AllGather[%d] = %v, want %d", i, v, i*7)
			}
		}
	})
}

func TestCopyLocalSameNodeOnly(t *testing.T) {
	run(t, 4, 2, func(pe *PE) {
		off := pe.Malloc(8)
		pe.Barrier()
		if pe.Rank() == 0 {
			pe.CopyLocal(1, off, []byte{7, 0, 0, 0, 0, 0, 0, 0}) // same node: ok
			func() {
				defer func() {
					if recover() == nil {
						t.Error("CopyLocal across nodes should panic")
					}
				}()
				pe.CopyLocal(2, off, []byte{7, 0, 0, 0, 0, 0, 0, 0})
			}()
		}
		pe.Barrier()
		if pe.Rank() == 1 {
			if got := pe.LoadInt64(1, off); got != 7 {
				t.Errorf("CopyLocal value = %d, want 7", got)
			}
		}
	})
}

func TestWaitUntil(t *testing.T) {
	run(t, 2, 2, func(pe *PE) {
		off := pe.Malloc(8)
		pe.Barrier()
		if pe.Rank() == 0 {
			got := pe.WaitUntilInt64(off, CmpGe, 5)
			if got < 5 {
				t.Errorf("WaitUntil returned %d before condition held", got)
			}
		} else {
			for v := int64(1); v <= 5; v++ {
				pe.PutInt64(0, off, v)
			}
		}
		pe.Barrier()
	})
}

func TestWaitCmpOperators(t *testing.T) {
	cases := []struct {
		cmp  WaitCmp
		a, b int64
		want bool
	}{
		{CmpEq, 3, 3, true}, {CmpEq, 3, 4, false},
		{CmpNe, 3, 4, true}, {CmpNe, 3, 3, false},
		{CmpGt, 5, 4, true}, {CmpGt, 4, 4, false},
		{CmpGe, 4, 4, true}, {CmpGe, 3, 4, false},
		{CmpLt, 3, 4, true}, {CmpLt, 4, 4, false},
		{CmpLe, 4, 4, true}, {CmpLe, 5, 4, false},
	}
	for _, tc := range cases {
		if got := tc.cmp.holds(tc.a, tc.b); got != tc.want {
			t.Errorf("cmp %d: holds(%d,%d) = %v, want %v", tc.cmp, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	run(t, 4, 4, func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Charge(1_000_000)
		}
		pe.Barrier()
		if now := pe.Clock().Now(); now < 1_000_000 {
			t.Errorf("PE %d clock %d: barrier should advance to straggler's 1000000", pe.Rank(), now)
		}
	})
}

func TestTransferCostsChargeClock(t *testing.T) {
	run(t, 4, 2, func(pe *PE) {
		off := pe.Malloc(1024)
		pe.Barrier()
		if pe.Rank() == 0 {
			before := pe.Clock().Now()
			pe.Put(2, off, make([]byte, 1024)) // inter-node
			interCost := pe.Clock().Now() - before

			before = pe.Clock().Now()
			pe.Put(1, off, make([]byte, 1024)) // intra-node
			intraCost := pe.Clock().Now() - before

			if interCost <= intraCost {
				t.Errorf("inter-node cost (%d) should exceed intra-node (%d)", interCost, intraCost)
			}
		}
		pe.Barrier()
	})
}
