package shmem

import (
	"testing"

	"actorprof/internal/sim"
)

func benchWorld(b *testing.B, npes, perNode int, body func(pe *PE)) {
	b.Helper()
	err := Run(Config{Machine: sim.Machine{NumPEs: npes, PEsPerNode: perNode}}, body)
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPutIntraNode(b *testing.B) {
	benchWorld(b, 2, 2, func(pe *PE) {
		off := pe.Malloc(1024)
		data := make([]byte, 1024)
		pe.Barrier()
		if pe.Rank() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pe.Put(1, off, data)
			}
		}
		pe.Barrier()
	})
}

func BenchmarkPutInterNode(b *testing.B) {
	benchWorld(b, 2, 1, func(pe *PE) {
		off := pe.Malloc(1024)
		data := make([]byte, 1024)
		pe.Barrier()
		if pe.Rank() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pe.Put(1, off, data)
			}
		}
		pe.Barrier()
	})
}

func BenchmarkPutNBIQuietBatch(b *testing.B) {
	// The conveyor pattern: a batch of NBI puts completed by one quiet.
	benchWorld(b, 2, 1, func(pe *PE) {
		off := pe.Malloc(64 * 1024)
		data := make([]byte, 1024)
		pe.Barrier()
		if pe.Rank() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < 16; k++ {
					pe.PutNBI(1, off+k*1024, data)
				}
				pe.Quiet()
			}
		}
		pe.Barrier()
	})
}

func BenchmarkBarrier(b *testing.B) {
	benchWorld(b, 16, 8, func(pe *PE) {
		if pe.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			pe.Barrier()
		}
	})
}

func BenchmarkAtomicFetchAdd(b *testing.B) {
	benchWorld(b, 4, 2, func(pe *PE) {
		off := pe.Malloc(8)
		pe.Barrier()
		if pe.Rank() == 1 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pe.AtomicFetchAddInt64(0, off, 1)
			}
		}
		pe.Barrier()
	})
}

func BenchmarkAllReduce(b *testing.B) {
	benchWorld(b, 8, 4, func(pe *PE) {
		if pe.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			pe.AllReduceInt64(OpSum, int64(pe.Rank()))
		}
	})
}
