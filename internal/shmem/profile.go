package shmem

import (
	"fmt"
	"sort"
	"sync"
)

// Routine identifies an OpenSHMEM API routine for the profiling
// interface.
type Routine int

// Profiled routines.
const (
	RoutinePut Routine = iota
	RoutinePutNBI
	RoutineGet
	RoutineQuiet
	RoutineFence
	RoutineAtomicFetchAdd
	RoutineCopyLocal
	RoutineReadLocal
	RoutineBarrier
	numRoutines
)

var routineNames = [...]string{
	RoutinePut:            "shmem_putmem",
	RoutinePutNBI:         "shmem_putmem_nbi",
	RoutineGet:            "shmem_getmem",
	RoutineQuiet:          "shmem_quiet",
	RoutineFence:          "shmem_fence",
	RoutineAtomicFetchAdd: "shmem_atomic_fetch_add",
	RoutineCopyLocal:      "shmem_ptr_memcpy",
	RoutineReadLocal:      "shmem_ptr_read",
	RoutineBarrier:        "shmem_barrier_all",
}

// String returns the OpenSHMEM spelling of the routine.
func (r Routine) String() string {
	if r < 0 || r >= numRoutines {
		return fmt.Sprintf("Routine(%d)", int(r))
	}
	return routineNames[r]
}

// APIProfile is the simulation's answer to the OpenSHMEM Profiling
// Interface the paper's Section V-B proposes (the pshmem analogue of
// PMPI): every RMA/sync routine is wrapped and counted per PE, with
// payload bytes where applicable. Crucially - and this is the gap the
// paper documents in score-p, TAU, CrayPat, and VTune - the wrappers
// capture shmem_putmem_nbi and shmem_quiet, the non-blocking routines
// Conveyors lives on.
//
// Enable by setting Config.Profile before Run; read per-PE counts after.
type APIProfile struct {
	mu     sync.Mutex
	counts map[int]*[numRoutines]int64
	bytes  map[int]*[numRoutines]int64
}

// NewAPIProfile creates an empty profile.
func NewAPIProfile() *APIProfile {
	return &APIProfile{
		counts: make(map[int]*[numRoutines]int64),
		bytes:  make(map[int]*[numRoutines]int64),
	}
}

func (p *APIProfile) record(pe int, r Routine, n int) {
	p.mu.Lock()
	c := p.counts[pe]
	if c == nil {
		c = new([numRoutines]int64)
		p.counts[pe] = c
		p.bytes[pe] = new([numRoutines]int64)
	}
	c[r]++
	p.bytes[pe][r] += int64(n)
	p.mu.Unlock()
}

// Count returns how many times PE pe invoked routine r.
func (p *APIProfile) Count(pe int, r Routine) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c := p.counts[pe]; c != nil {
		return c[r]
	}
	return 0
}

// Bytes returns the total payload bytes PE pe moved with routine r.
func (p *APIProfile) Bytes(pe int, r Routine) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b := p.bytes[pe]; b != nil {
		return b[r]
	}
	return 0
}

// TotalCount sums a routine's invocations over all PEs.
func (p *APIProfile) TotalCount(r Routine) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var t int64
	for _, c := range p.counts {
		t += c[r]
	}
	return t
}

// Report renders the per-routine totals, busiest routine first - the
// view a PMPI/pshmem tool would print.
func (p *APIProfile) Report() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	type row struct {
		r     Routine
		n, by int64
	}
	var rows []row
	for r := Routine(0); r < numRoutines; r++ {
		var n, by int64
		for _, c := range p.counts {
			n += c[r]
		}
		for _, b := range p.bytes {
			by += b[r]
		}
		if n > 0 {
			rows = append(rows, row{r, n, by})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	out := "OpenSHMEM profiling interface (all PEs)\n"
	for _, rw := range rows {
		out += fmt.Sprintf("  %-24s calls=%-10d bytes=%d\n", rw.r, rw.n, rw.by)
	}
	return out
}
