package shmem

import (
	"strings"
	"testing"

	"actorprof/internal/sim"
)

func TestAPIProfileCountsRoutines(t *testing.T) {
	prof := NewAPIProfile()
	err := Run(Config{
		Machine: sim.Machine{NumPEs: 2, PEsPerNode: 1},
		Profile: prof,
	}, func(pe *PE) {
		off := pe.Malloc(64)
		pe.Barrier()
		if pe.Rank() == 0 {
			pe.Put(1, off, make([]byte, 16))
			pe.PutNBI(1, off+16, make([]byte, 8))
			pe.PutNBI(1, off+24, make([]byte, 8))
			pe.Quiet()
			pe.Get(1, off, make([]byte, 4))
			pe.AtomicFetchAddInt64(1, off+32, 1)
		}
		pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// The non-blocking routines the paper's surveyed profilers miss.
	if got := prof.Count(0, RoutinePutNBI); got != 2 {
		t.Errorf("putmem_nbi count = %d, want 2", got)
	}
	if got := prof.Bytes(0, RoutinePutNBI); got != 16 {
		t.Errorf("putmem_nbi bytes = %d, want 16", got)
	}
	if got := prof.Count(0, RoutineQuiet); got != 1 {
		t.Errorf("quiet count = %d, want 1 (barriers must not double-count)", got)
	}
	if got := prof.Count(0, RoutinePut); got != 1 {
		t.Errorf("putmem count = %d, want 1", got)
	}
	if got := prof.Count(0, RoutineGet); got != 1 {
		t.Errorf("getmem count = %d, want 1", got)
	}
	if got := prof.Count(0, RoutineAtomicFetchAdd); got != 1 {
		t.Errorf("atomic count = %d, want 1", got)
	}
	// Every PE hits the same barriers: Malloc implies one, plus two
	// explicit ones.
	if b0, b1 := prof.Count(0, RoutineBarrier), prof.Count(1, RoutineBarrier); b0 != b1 || b0 < 3 {
		t.Errorf("barrier counts %d/%d, want equal and >= 3", b0, b1)
	}
	// PE 1 issued no puts.
	if got := prof.Count(1, RoutinePut); got != 0 {
		t.Errorf("PE 1 putmem count = %d, want 0", got)
	}
}

func TestAPIProfileReport(t *testing.T) {
	prof := NewAPIProfile()
	err := Run(Config{
		Machine: sim.Machine{NumPEs: 2, PEsPerNode: 2},
		Profile: prof,
	}, func(pe *PE) {
		off := pe.Malloc(8)
		pe.Barrier()
		pe.CopyLocal(1-pe.Rank(), off, make([]byte, 8))
		pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := prof.Report()
	if !strings.Contains(rep, "shmem_barrier_all") || !strings.Contains(rep, "shmem_ptr_memcpy") {
		t.Fatalf("report missing routines:\n%s", rep)
	}
	if prof.TotalCount(RoutineCopyLocal) != 2 {
		t.Fatalf("total CopyLocal = %d", prof.TotalCount(RoutineCopyLocal))
	}
}

func TestAPIProfileCapturesConveyorsNBI(t *testing.T) {
	// The headline claim: run a two-node workload and confirm the
	// profiling interface observes shmem_putmem_nbi and shmem_quiet -
	// the calls score-p/TAU/CrayPat/VTune cannot capture (paper V-B).
	prof := NewAPIProfile()
	err := Run(Config{
		Machine: sim.Machine{NumPEs: 4, PEsPerNode: 2},
		Profile: prof,
	}, func(pe *PE) {
		off := pe.Malloc(1024)
		pe.Barrier()
		peer := (pe.Rank() + 2) % 4 // other node
		for i := 0; i < 10; i++ {
			pe.PutNBI(peer, off, make([]byte, 64))
			if i%5 == 4 {
				pe.Quiet()
				pe.PutInt64(peer, off+512, int64(i))
			}
		}
		pe.Quiet()
		pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := prof.TotalCount(RoutinePutNBI); got != 40 {
		t.Errorf("total putmem_nbi = %d, want 40", got)
	}
	if got := prof.TotalCount(RoutineQuiet); got != 12 {
		t.Errorf("total quiet = %d, want 12", got)
	}
}
