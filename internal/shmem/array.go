package shmem

import "fmt"

// Int64Array is a typed view over a symmetric allocation: every PE holds
// len elements at the same heap offset, the idiomatic shape of SHMEM
// programs (symmetric tables, counters, signal arrays). Methods mirror
// the OpenSHMEM typed RMA calls. An Int64Array value is per-PE (it wraps
// that PE's handle) but addresses the whole symmetric object.
type Int64Array struct {
	pe  *PE
	off int
	n   int
}

// AllocInt64Array performs a collective symmetric allocation of n int64
// elements (zeroed) on every PE.
func AllocInt64Array(pe *PE, n int) Int64Array {
	if n < 0 {
		panic(fmt.Sprintf("shmem: AllocInt64Array with negative length %d", n))
	}
	off := pe.Malloc(n * 8)
	return Int64Array{pe: pe, off: off, n: n}
}

// Len returns the per-PE element count.
func (a Int64Array) Len() int { return a.n }

// Offset returns the symmetric heap offset (useful for interop with raw
// RMA calls).
func (a Int64Array) Offset() int { return a.off }

func (a Int64Array) check(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("shmem: index %d out of range [0,%d)", i, a.n))
	}
}

// Get reads element i of this PE's own copy.
func (a Int64Array) Get(i int) int64 {
	a.check(i)
	return a.pe.LoadInt64(a.pe.Rank(), a.off+8*i)
}

// Set writes element i of this PE's own copy.
func (a Int64Array) Set(i int, v int64) {
	a.check(i)
	a.pe.StoreInt64Local(a.off+8*i, v)
}

// PutRemote writes element i of PE target's copy (shmem_int64_p).
func (a Int64Array) PutRemote(target, i int, v int64) {
	a.check(i)
	a.pe.PutInt64(target, a.off+8*i, v)
}

// GetRemote reads element i of PE target's copy (shmem_int64_g).
func (a Int64Array) GetRemote(target, i int) int64 {
	a.check(i)
	return a.pe.GetInt64(target, a.off+8*i)
}

// AddRemote atomically adds delta to element i of PE target's copy and
// returns the previous value (shmem_int64_atomic_fetch_add).
func (a Int64Array) AddRemote(target, i int, delta int64) int64 {
	a.check(i)
	return a.pe.AtomicFetchAddInt64(target, a.off+8*i, delta)
}

// WaitUntil blocks until this PE's element i satisfies cmp against v
// (shmem_int64_wait_until).
func (a Int64Array) WaitUntil(i int, cmp WaitCmp, v int64) int64 {
	a.check(i)
	return a.pe.WaitUntilInt64(a.off+8*i, cmp, v)
}

// Local snapshots this PE's copy into a fresh slice.
func (a Int64Array) Local() []int64 {
	out := make([]int64, a.n)
	for i := range out {
		out[i] = a.Get(i)
	}
	return out
}
