package sim

import (
	"encoding/json"
	"testing"
)

func TestCostModelValidate(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*CostModel)
	}{
		{"zero value", func(c *CostModel) { *c = CostModel{} }},
		{"negative latency", func(c *CostModel) { c.NetworkLatency = -1 }},
		{"negative per-byte", func(c *CostModel) { c.LocalCopyPerByte = -5 }},
		{"free network", func(c *CostModel) { c.NetworkLatency, c.NetworkPerByte = 0, 0 }},
		{"zero instruction scale", func(c *CostModel) { c.InstructionScale = 0 }},
	}
	for _, tc := range bad {
		c := DefaultCostModel()
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, c)
		}
	}
	// Zero InstructionCycles legitimately disables the scale check.
	c := DefaultCostModel()
	c.InstructionCycles, c.InstructionScale = 0, 0
	if err := c.Validate(); err != nil {
		t.Errorf("instruction-free model rejected: %v", err)
	}
}

// TestPriceEventMatchesFormulas pins PriceEvent to the existing cost
// formulas: replay exactness depends on one canonical pricing.
func TestPriceEventMatchesFormulas(t *testing.T) {
	c := DefaultCostModel()
	cases := []struct {
		kind EventKind
		arg  int64
		want int64
	}{
		{EvNetworkPut, 64, c.NetworkTransferCost(64)},
		{EvLocalCopy, 64, c.LocalTransferCost(64)},
		{EvQuiet, 3, c.QuietLatency},
		{EvInstr, 1000, c.InstructionCost(1000)},
		{EvIngest, 5, 5 * c.ItemIngestCycles},
		{EvDelay, 777, 777},
		{EvRaw, 123, 123},
		{EvBarrier, 0, 0},
		{EvHandlerStart, 42, 0},
	}
	for _, tc := range cases {
		if got := c.PriceEvent(tc.kind, tc.arg); got != tc.want {
			t.Errorf("PriceEvent(%v, %d) = %d, want %d", tc.kind, tc.arg, got, tc.want)
		}
	}
}

func TestEventKindCharged(t *testing.T) {
	charged := map[EventKind]bool{
		EvNetworkPut: true, EvLocalCopy: true, EvQuiet: true, EvInstr: true,
		EvIngest: true, EvDelay: true, EvRaw: true,
		EvBarrier: false, EvFinishStart: false, EvFinishEnd: false,
		EvMainPause: false, EvMainResume: false, EvHandlerStart: false, EvHandlerEnd: false,
	}
	if len(charged) != int(NumEventKinds) {
		t.Fatalf("test covers %d kinds, NumEventKinds is %d", len(charged), NumEventKinds)
	}
	for k, want := range charged {
		if got := k.Charged(); got != want {
			t.Errorf("%v.Charged() = %v, want %v", k, got, want)
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	rec := NewScheduleRecorder(Machine{NumPEs: 2, PEsPerNode: 2}, Virtual, DefaultCostModel())
	rec.PE(0).Skew = 7
	for pe := 0; pe < 2; pe++ {
		l := rec.PE(pe)
		l.Append(EvFinishStart, 0)
		l.Append(EvNetworkPut, 128)
		l.Append(EvHandlerStart, ActorID(1, 2))
		l.Append(EvInstr, 50)
		l.Append(EvHandlerEnd, ActorID(1, 2))
		l.Append(EvBarrier, 0)
		l.Append(EvFinishEnd, 0)
	}
	s := rec.Schedule()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Schedule
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
	if got.PEs[0].Skew != 7 || len(got.PEs[1].Events) != len(s.PEs[1].Events) {
		t.Fatalf("round trip lost data: %+v", got.PEs)
	}
	for i, ev := range got.PEs[0].Events {
		if ev != s.PEs[0].Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, ev, s.PEs[0].Events[i])
		}
	}
}

func TestScheduleValidateRejects(t *testing.T) {
	mk := func() *Schedule {
		rec := NewScheduleRecorder(Machine{NumPEs: 2, PEsPerNode: 2}, Virtual, DefaultCostModel())
		rec.PE(0).Append(EvBarrier, 0)
		rec.PE(1).Append(EvBarrier, 0)
		return rec.Schedule()
	}
	cases := []struct {
		name string
		mut  func(*Schedule)
	}{
		{"missing PE log", func(s *Schedule) { s.PEs = s.PEs[:1] }},
		{"nil PE log", func(s *Schedule) { s.PEs[1] = nil }},
		{"negative skew", func(s *Schedule) { s.PEs[0].Skew = -1 }},
		{"unknown kind", func(s *Schedule) { s.PEs[0].Events[0].Kind = NumEventKinds }},
		{"mismatched barriers", func(s *Schedule) { s.PEs[0].Events = nil }},
		{"bad cost", func(s *Schedule) { s.Cost = CostModel{} }},
		{"bad machine", func(s *Schedule) { s.Machine.NumPEs = 0 }},
	}
	for _, tc := range cases {
		s := mk()
		tc.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the schedule", tc.name)
		}
	}
}

func TestEventJSONRejectsGarbage(t *testing.T) {
	for _, raw := range []string{`[1]`, `[1,2,3]`, `["x",2]`, `[99,0]`, `[-1,0]`, `{}`} {
		var ev Event
		if err := json.Unmarshal([]byte(raw), &ev); err == nil {
			t.Errorf("Unmarshal(%s) accepted", raw)
		}
	}
}

func TestActorIDParts(t *testing.T) {
	for _, tc := range []struct{ ord, mb int }{{0, 0}, {1, 2}, {300, 255}, {7, 9}} {
		id := ActorID(tc.ord, tc.mb)
		ord, mb := ActorIDParts(id)
		if ord != tc.ord || mb != tc.mb {
			t.Errorf("ActorIDParts(ActorID(%d, %d)) = (%d, %d)", tc.ord, tc.mb, ord, mb)
		}
	}
}
