package sim

import (
	"fmt"
	"sync/atomic"

	"actorprof/internal/tsc"
)

// TimingMode selects how per-PE clocks advance.
type TimingMode int

const (
	// Virtual advances clocks purely from cost-model charges. Runs are
	// fully deterministic; this is the default for tests and benches.
	Virtual TimingMode = iota
	// Hybrid adds real elapsed tsc cycles on top of the cost-model
	// charges, the closest analogue of the paper's rdtsc-based
	// measurement on real hardware.
	Hybrid
)

// String implements fmt.Stringer.
func (m TimingMode) String() string {
	switch m {
	case Virtual:
		return "virtual"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("TimingMode(%d)", int(m))
	}
}

// Clock is a per-PE cycle clock. In Virtual mode it advances only through
// Charge calls issued by the simulated runtime (network operations,
// instruction retirements). In Hybrid mode real tsc cycles accumulate as
// well.
//
// A Clock is read by its owning PE goroutine and advanced by the same
// goroutine, but SyncMax-based barrier synchronization reads clocks
// cross-goroutine, so the charged component is atomic.
type Clock struct {
	mode    TimingMode
	charged atomic.Int64
	// skewPercent inflates every Charge by skewPercent/100, modelling a
	// persistently slow PE (fault injection). Set once before the
	// owning goroutine starts; 0 means no skew.
	skewPercent int64
	// realBase is the tsc reading when the clock was created/reset;
	// only used in Hybrid mode.
	realBase int64
}

// NewClock creates a clock in the given mode, starting at zero.
func NewClock(mode TimingMode) *Clock {
	return &Clock{mode: mode, realBase: tsc.Cycles()}
}

// Mode returns the clock's timing mode.
func (c *Clock) Mode() TimingMode { return c.mode }

// SetSkewPercent makes every subsequent Charge cost p percent extra (a
// persistently slow PE, for fault injection). Must be called before the
// owning goroutine starts charging; negative p is ignored.
func (c *Clock) SetSkewPercent(p int64) {
	if p > 0 {
		c.skewPercent = p
	}
}

// SkewPercent returns the configured charge inflation.
func (c *Clock) SkewPercent() int64 { return c.skewPercent }

// Charge advances the clock by n cycles (inflated by any configured
// skew). Negative charges are ignored.
func (c *Clock) Charge(n int64) {
	if n > 0 {
		c.charged.Add(SkewCharge(n, c.skewPercent))
	}
}

// Now returns the current clock value in cycles.
//
// In Hybrid mode the real elapsed-cycle component is inflated by the
// same skew percentage as charges: a fault-injected slow PE must be
// slow in *both* components, otherwise Hybrid runs would see the skew
// only on the (typically smaller) charged part and under-model the
// straggler that Virtual mode models fully.
func (c *Clock) Now() int64 {
	v := c.charged.Load()
	if c.mode == Hybrid {
		v += SkewCharge(tsc.Cycles()-c.realBase, c.skewPercent)
	}
	return v
}

// AdvanceTo charges the clock forward so that Now() >= target. Used by
// barrier synchronization: after a BSP synchronization point every PE has
// logically waited for the slowest one, so all clocks advance to the
// maximum. A target at or below the current value is a no-op.
func (c *Clock) AdvanceTo(target int64) {
	now := c.Now()
	if target > now {
		c.charged.Add(target - now)
	}
}

// Reset rewinds the clock to zero.
func (c *Clock) Reset() {
	c.charged.Store(0)
	c.realBase = tsc.Cycles()
}
