package sim

import (
	"testing"
	"testing/quick"
)

func TestMachineValidate(t *testing.T) {
	good := Machine{NumPEs: 32, PEsPerNode: 16}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid machine rejected: %v", err)
	}
	for _, bad := range []Machine{
		{NumPEs: 0, PEsPerNode: 1},
		{NumPEs: 4, PEsPerNode: 0},
		{NumPEs: 7, PEsPerNode: 4},
		{NumPEs: -4, PEsPerNode: 4},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("machine %+v should be invalid", bad)
		}
	}
}

func TestMachineTopology(t *testing.T) {
	m := Machine{NumPEs: 32, PEsPerNode: 16}
	if m.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", m.NumNodes())
	}
	if m.NodeOf(15) != 0 || m.NodeOf(16) != 1 {
		t.Fatal("NodeOf wrong at the boundary")
	}
	if m.LocalRank(17) != 1 {
		t.Fatalf("LocalRank(17) = %d", m.LocalRank(17))
	}
	if !m.SameNode(0, 15) || m.SameNode(15, 16) {
		t.Fatal("SameNode wrong")
	}
}

func TestMachineTopologyProperty(t *testing.T) {
	// Property: pe == NodeOf(pe)*PEsPerNode + LocalRank(pe).
	f := func(peRaw uint16, perRaw uint8) bool {
		per := int(perRaw%32) + 1
		nodes := 4
		m := Machine{NumPEs: per * nodes, PEsPerNode: per}
		pe := int(peRaw) % m.NumPEs
		return m.NodeOf(pe)*m.PEsPerNode+m.LocalRank(pe) == pe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelTransfers(t *testing.T) {
	c := DefaultCostModel()
	if c.NetworkTransferCost(1024) <= c.LocalTransferCost(1024) {
		t.Error("network transfers must cost more than local copies")
	}
	// Latency dominates for small buffers.
	if c.NetworkTransferCost(8)-c.NetworkLatency > c.NetworkLatency {
		t.Error("per-byte cost should not dominate an 8-byte transfer")
	}
	if got := c.NetworkTransferCost(100); got != c.NetworkLatency+100*c.NetworkPerByte {
		t.Errorf("NetworkTransferCost = %d", got)
	}
}

func TestInstructionCost(t *testing.T) {
	c := DefaultCostModel()
	// Default model: IPC 2 -> 100 instructions = 50 cycles.
	if got := c.InstructionCost(100); got != 50 {
		t.Errorf("InstructionCost(100) = %d, want 50", got)
	}
	zeroScale := CostModel{InstructionCycles: 3}
	if got := zeroScale.InstructionCost(10); got != 30 {
		t.Errorf("unscaled InstructionCost = %d, want 30", got)
	}
}

func TestClockVirtualChargesOnly(t *testing.T) {
	c := NewClock(Virtual)
	if c.Now() != 0 {
		t.Fatalf("fresh virtual clock = %d", c.Now())
	}
	c.Charge(100)
	c.Charge(-50) // ignored
	if c.Now() != 100 {
		t.Fatalf("clock = %d, want 100", c.Now())
	}
	c.AdvanceTo(500)
	if c.Now() != 500 {
		t.Fatalf("AdvanceTo: clock = %d, want 500", c.Now())
	}
	c.AdvanceTo(10) // backwards: no-op
	if c.Now() != 500 {
		t.Fatalf("AdvanceTo backwards moved the clock: %d", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset: clock = %d", c.Now())
	}
}

func TestClockHybridIncludesRealTime(t *testing.T) {
	c := NewClock(Hybrid)
	c.Charge(1000)
	// Hybrid includes real elapsed cycles, so Now() >= charges.
	if c.Now() < 1000 {
		t.Fatalf("hybrid clock = %d, want >= 1000", c.Now())
	}
	// And it advances on its own.
	first := c.Now()
	for i := 0; i < 100000; i++ {
		_ = i
	}
	if c.Now() < first {
		t.Fatal("hybrid clock went backwards")
	}
}

func TestTimingModeString(t *testing.T) {
	if Virtual.String() != "virtual" || Hybrid.String() != "hybrid" {
		t.Fatal("mode names wrong")
	}
	if TimingMode(9).String() == "" {
		t.Fatal("unknown mode should still format")
	}
}
