// Package sim provides the machine model underlying the simulated
// OpenSHMEM runtime: the grouping of processing elements (PEs) into
// cluster nodes, the cost model for intra- and inter-node data movement,
// and per-PE virtual cycle clocks.
//
// The paper's experiments ran on NERSC Perlmutter (AMD Milan nodes,
// Slingshot 11 network). This repository substitutes a single-process
// simulation; sim defines the knobs that preserve the *relative* cost
// structure the paper's profiles depend on: inter-node transfers are far
// more expensive than intra-node copies, per-transfer latency dwarfs
// per-byte cost for small buffers, and stragglers bound total time
// because BSP-style termination synchronizes every PE.
package sim

import "fmt"

// Machine describes the simulated cluster: how many PEs exist and how
// they are distributed over nodes. The paper's runs use 16 PEs on 1 node
// and 32 PEs on 2 nodes.
type Machine struct {
	// NumPEs is the total number of processing elements (OpenSHMEM
	// ranks). One actor instance runs per PE.
	NumPEs int
	// PEsPerNode is the number of PEs co-located on one cluster node.
	// PEs p with p/PEsPerNode equal share a node and communicate via
	// shared memory (shmem_ptr / memcpy) rather than the network.
	PEsPerNode int
}

// Validate checks the machine description for consistency.
func (m Machine) Validate() error {
	if m.NumPEs <= 0 {
		return fmt.Errorf("sim: NumPEs must be positive, got %d", m.NumPEs)
	}
	if m.PEsPerNode <= 0 {
		return fmt.Errorf("sim: PEsPerNode must be positive, got %d", m.PEsPerNode)
	}
	if m.NumPEs%m.PEsPerNode != 0 {
		return fmt.Errorf("sim: NumPEs (%d) must be a multiple of PEsPerNode (%d)",
			m.NumPEs, m.PEsPerNode)
	}
	return nil
}

// NumNodes returns the number of cluster nodes.
func (m Machine) NumNodes() int { return m.NumPEs / m.PEsPerNode }

// NodeOf returns the node index hosting PE pe.
func (m Machine) NodeOf(pe int) int { return pe / m.PEsPerNode }

// LocalRank returns pe's rank within its node.
func (m Machine) LocalRank(pe int) int { return pe % m.PEsPerNode }

// SameNode reports whether PEs a and b share a node.
func (m Machine) SameNode(a, b int) bool { return m.NodeOf(a) == m.NodeOf(b) }

// CostModel holds the cycle charges for simulated operations. All values
// are in cycles of the per-PE virtual clock (see Clock).
//
// Defaults are loosely calibrated to a Milan + Slingshot system at the
// tsc package's 3 GHz reference frequency: ~2 µs one-way small-message
// network latency, ~25 GB/s effective per-PE network bandwidth, and
// ~100 GB/s intra-node copy bandwidth.
type CostModel struct {
	// NetworkLatency is the fixed per-transfer charge for an inter-node
	// non-blocking put (start-up latency, rendezvous, NIC doorbell).
	NetworkLatency int64
	// NetworkPerByte is the additional per-byte charge of an inter-node
	// transfer (inverse bandwidth).
	NetworkPerByte int64
	// QuietLatency is the charge of a shmem_quiet, which must wait for
	// the completion of all outstanding non-blocking puts.
	QuietLatency int64
	// SignalLatency is the charge of the small signaling put issued by
	// conveyor nonblock_progress after quiet.
	SignalLatency int64
	// LocalCopyLatency is the fixed charge for an intra-node transfer
	// (memcpy via shmem_ptr): cache-line ping-pong and queue management.
	LocalCopyLatency int64
	// LocalCopyPerByte is the per-byte charge of an intra-node copy.
	LocalCopyPerByte int64
	// InstructionCycles charges the clock per simulated instruction
	// reported by the PAPI cost model, expressed as a rational
	// InstructionCycles = numerator cycles per InstructionScale
	// instructions (so that IPC > 1 is expressible in integers).
	InstructionCycles int64
	// InstructionScale divides the instruction count when charging;
	// cycles = ins * InstructionCycles / InstructionScale.
	InstructionScale int64
	// PollCycles is the charge for one unproductive progress poll
	// (checking signals/queues and finding nothing). It is *not* charged
	// by default: poll counts depend on goroutine scheduling, and
	// charging them would make Virtual-mode runs nondeterministic.
	// Waiting time is instead modelled by clock synchronization at
	// barriers.
	PollCycles int64
	// ItemIngestCycles is the per-item cost of receiving: parsing an
	// item out of a landed buffer and delivering or re-routing it. This
	// is conveyor-internal work and lands in the COMM regime.
	ItemIngestCycles int64
}

// DefaultCostModel returns the calibration used by the reproduced
// experiments. The absolute numbers are not the point (the paper's
// testbed is not reproducible); the ratios are chosen so that:
// inter-node latency >> intra-node latency, per-transfer cost >>
// per-byte cost at conveyor buffer sizes, and computation (MAIN/PROC)
// is small relative to communication, matching Figures 12-13.
func DefaultCostModel() CostModel {
	return CostModel{
		NetworkLatency:    6000, // ~2 µs at 3 GHz
		NetworkPerByte:    1,    // ~3 GB/s per-PE effective stream
		QuietLatency:      9000, // full fence: waits on all outstanding puts
		SignalLatency:     6000, // small put, same latency class
		LocalCopyLatency:  800,  // shared-memory handoff + queue management
		LocalCopyPerByte:  0,    // intra-node copies are bandwidth-cheap at these sizes
		InstructionCycles: 1,
		InstructionScale:  2, // IPC = 2
		PollCycles:        40,
		ItemIngestCycles:  80, // header parse + copy + queue append + pull
	}
}

// NetworkTransferCost returns the clock charge for an inter-node
// non-blocking put of n bytes.
func (c CostModel) NetworkTransferCost(n int) int64 {
	return c.NetworkLatency + int64(n)*c.NetworkPerByte
}

// LocalTransferCost returns the clock charge for an intra-node copy of
// n bytes.
func (c CostModel) LocalTransferCost(n int) int64 {
	return c.LocalCopyLatency + int64(n)*c.LocalCopyPerByte
}

// InstructionCost converts a simulated instruction count into cycles.
func (c CostModel) InstructionCost(ins int64) int64 {
	if c.InstructionScale <= 0 {
		return ins * c.InstructionCycles
	}
	return ins * c.InstructionCycles / c.InstructionScale
}
