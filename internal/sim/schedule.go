package sim

import (
	"encoding/json"
	"fmt"
)

// This file defines the recorded-schedule model behind the causal
// what-if profiler (internal/whatif): a per-PE log of every clock
// charge and every runtime region transition, captured while a run
// executes.
//
// Why record instead of re-running: Virtual-mode clock *arithmetic* is
// deterministic, but the event sequence of a fresh execution is not -
// the conveyor endgame can ship one extra partially-filled buffer when
// the goroutine interleaving differs, which perturbs total charge
// counts between otherwise identical runs. A recorded schedule pins the
// interleaving, and because no runtime code path branches on clock
// values (poll charges are explicitly excluded from the cost model for
// exactly this reason), re-pricing the recorded event sequence under a
// different CostModel yields precisely what a re-execution with the
// same interleaving would have measured. That is the exactness
// guarantee the what-if engine's differential tests pin.
//
// Every charge site in shmem/conveyor/actor funnels through
// PE.ChargeEvent / PE.ChargeInstr, which price via CostModel.PriceEvent
// - the same function the replay engine uses - so recorded charging and
// replayed charging cannot drift apart.

// EventKind classifies one recorded schedule event. Kinds at or below
// EvRaw carry a clock charge (priced by CostModel.PriceEvent); the
// kinds after it are zero-cost region markers consumed by the
// T_MAIN/T_COMM/T_PROC attribution state machine.
type EventKind uint8

const (
	// EvNetworkPut is an inter-node transfer; Arg is the payload bytes.
	EvNetworkPut EventKind = iota
	// EvLocalCopy is an intra-node copy; Arg is the payload bytes.
	EvLocalCopy
	// EvQuiet is a flushing shmem_quiet; Arg is the number of completed
	// non-blocking puts (the price does not depend on it).
	EvQuiet
	// EvInstr is simulated instruction retirement; Arg is the
	// instruction count.
	EvInstr
	// EvIngest is conveyor item ingestion; Arg is the item count.
	EvIngest
	// EvDelay is a fault-injected stall; Arg is raw cycles.
	EvDelay
	// EvRaw is an application-level direct Charge; Arg is raw cycles.
	EvRaw

	// EvBarrier marks a shmem_barrier_all arrival (after its implied
	// quiet). The k-th barrier event on every PE belongs to the same
	// global generation - all barriers are all-PE collectives - so the
	// replay engine synchronizes clocks to the generation maximum here.
	EvBarrier
	// EvFinishStart/EvFinishEnd bracket one instrumented Finish scope
	// (the T_TOTAL window).
	EvFinishStart
	EvFinishEnd
	// EvMainPause/EvMainResume are the MAIN-timer transitions around
	// runtime-internal sections.
	EvMainPause
	EvMainResume
	// EvHandlerStart/EvHandlerEnd bracket one outermost message-handler
	// execution (a batched activation is one bracket). Arg is the actor
	// ID (selector ordinal << 8 | mailbox) with the batch message count
	// packed into bits 32+ (0 means one message); split it with
	// ActorIDCanon.
	EvHandlerStart
	EvHandlerEnd

	// NumEventKinds bounds the enum.
	NumEventKinds
)

// Charged reports whether the kind carries a clock charge.
func (k EventKind) Charged() bool { return k <= EvRaw }

// String implements fmt.Stringer.
func (k EventKind) String() string {
	names := [...]string{
		"network_put", "local_copy", "quiet", "instr", "ingest", "delay", "raw",
		"barrier", "finish_start", "finish_end", "main_pause", "main_resume",
		"handler_start", "handler_end",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// PriceEvent is the canonical event-to-cycles mapping: the single
// pricing function shared by record-time charging (PE.ChargeEvent) and
// the what-if replay/projection engines. Marker kinds price to zero.
func (c CostModel) PriceEvent(kind EventKind, arg int64) int64 {
	switch kind {
	case EvNetworkPut:
		return c.NetworkTransferCost(int(arg))
	case EvLocalCopy:
		return c.LocalTransferCost(int(arg))
	case EvQuiet:
		return c.QuietLatency
	case EvInstr:
		return c.InstructionCost(arg)
	case EvIngest:
		return arg * c.ItemIngestCycles
	case EvDelay, EvRaw:
		return arg
	default:
		return 0
	}
}

// Validate checks the cost model for the degenerate shapes that
// silently poison profiles and what-if projections: negative charges,
// the all-zero model (free everything - almost always a forgotten
// DefaultCostModel), and a free network (no latency and no per-byte
// cost, which collapses the COMM regime the paper's figures are
// about). It mirrors Machine.Validate; core and whatif entry points
// call it instead of running with a degenerate model.
func (c CostModel) Validate() error {
	if c == (CostModel{}) {
		return fmt.Errorf("sim: zero-value CostModel (every operation free); use sim.DefaultCostModel() or leave the option unset")
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"NetworkLatency", c.NetworkLatency},
		{"NetworkPerByte", c.NetworkPerByte},
		{"QuietLatency", c.QuietLatency},
		{"SignalLatency", c.SignalLatency},
		{"LocalCopyLatency", c.LocalCopyLatency},
		{"LocalCopyPerByte", c.LocalCopyPerByte},
		{"InstructionCycles", c.InstructionCycles},
		{"InstructionScale", c.InstructionScale},
		{"PollCycles", c.PollCycles},
		{"ItemIngestCycles", c.ItemIngestCycles},
	} {
		if f.v < 0 {
			return fmt.Errorf("sim: CostModel.%s must be non-negative, got %d", f.name, f.v)
		}
	}
	if c.NetworkLatency == 0 && c.NetworkPerByte == 0 {
		return fmt.Errorf("sim: CostModel has a free network (NetworkLatency and NetworkPerByte both zero); inter-node transfers would cost nothing")
	}
	if c.InstructionCycles > 0 && c.InstructionScale <= 0 {
		return fmt.Errorf("sim: CostModel.InstructionScale must be positive when InstructionCycles is set, got %d", c.InstructionScale)
	}
	return nil
}

// Event is one recorded schedule entry. Charged kinds are re-priced by
// the what-if engine; marker kinds drive its attribution state machine.
type Event struct {
	Kind EventKind
	Arg  int64
}

// MarshalJSON encodes the event compactly as a [kind, arg] pair; a
// schedule holds one event per charge, so the long form would bloat
// schedule.json severalfold.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal([2]int64{int64(e.Kind), e.Arg})
}

// UnmarshalJSON decodes the [kind, arg] pair form.
func (e *Event) UnmarshalJSON(data []byte) error {
	var pair []int64
	if err := json.Unmarshal(data, &pair); err != nil {
		return err
	}
	if len(pair) != 2 {
		return fmt.Errorf("sim: schedule event must be a [kind, arg] pair, got %d elements", len(pair))
	}
	if pair[0] < 0 || pair[0] >= int64(NumEventKinds) {
		return fmt.Errorf("sim: schedule event kind %d out of range", pair[0])
	}
	e.Kind, e.Arg = EventKind(pair[0]), pair[1]
	return nil
}

// PELog is one PE's recorded event sequence. Only the owning PE's
// goroutine appends during the run; the log is read-only afterwards.
type PELog struct {
	// Skew is the PE's charge-inflation percent (fault-injected slow
	// PE); replay applies the same SkewCharge arithmetic.
	Skew int64 `json:"skew,omitempty"`
	// Events is the ordered per-PE schedule.
	Events []Event `json:"events"`
}

// Append records one event.
func (l *PELog) Append(kind EventKind, arg int64) {
	l.Events = append(l.Events, Event{Kind: kind, Arg: arg})
}

// Schedule is a full recorded run: the machine shape, the cost model
// the run was priced with, and every PE's event log. It is the input to
// the what-if engine and the payload of a trace directory's
// schedule.json.
type Schedule struct {
	Machine Machine    `json:"machine"`
	Timing  TimingMode `json:"timing"`
	Cost    CostModel  `json:"cost"`
	PEs     []*PELog   `json:"pes"`
}

// Validate checks internal consistency: machine/log agreement, a
// priceable cost model, and equal barrier counts across PEs (every
// barrier is an all-PE collective, so a completed run cannot record
// anything else; replay synchronization depends on it).
func (s *Schedule) Validate() error {
	if err := s.Machine.Validate(); err != nil {
		return err
	}
	if err := s.Cost.Validate(); err != nil {
		return err
	}
	if len(s.PEs) != s.Machine.NumPEs {
		return fmt.Errorf("sim: schedule has %d PE logs for a %d-PE machine", len(s.PEs), s.Machine.NumPEs)
	}
	want := -1
	for rank, l := range s.PEs {
		if l == nil {
			return fmt.Errorf("sim: schedule PE %d log is nil", rank)
		}
		if l.Skew < 0 {
			return fmt.Errorf("sim: schedule PE %d has negative skew %d", rank, l.Skew)
		}
		n := 0
		for _, e := range l.Events {
			if e.Kind >= NumEventKinds {
				return fmt.Errorf("sim: schedule PE %d has unknown event kind %d", rank, e.Kind)
			}
			if e.Kind == EvBarrier {
				n++
			}
		}
		if want < 0 {
			want = n
		} else if n != want {
			return fmt.Errorf("sim: schedule PE %d recorded %d barriers, PE 0 recorded %d (incomplete run?)", rank, n, want)
		}
	}
	return nil
}

// Events returns the total recorded event count across all PEs.
func (s *Schedule) Events() int {
	n := 0
	for _, l := range s.PEs {
		n += len(l.Events)
	}
	return n
}

// ScheduleRecorder captures a Schedule during a run. Create one with
// NewScheduleRecorder, hand it to shmem.Config.Schedule, and read the
// result with Schedule() after shmem.Run returns. Each PE appends to
// its own log from its own goroutine; there is no cross-PE state.
type ScheduleRecorder struct {
	s Schedule
}

// NewScheduleRecorder creates a recorder for the given run shape. The
// cost model must be the one the run actually charges with (shmem's
// post-default model), since it is the baseline the what-if engine
// re-prices against.
func NewScheduleRecorder(m Machine, timing TimingMode, cost CostModel) *ScheduleRecorder {
	r := &ScheduleRecorder{s: Schedule{Machine: m, Timing: timing, Cost: cost}}
	r.s.PEs = make([]*PELog, m.NumPEs)
	for i := range r.s.PEs {
		r.s.PEs[i] = &PELog{}
	}
	return r
}

// PE returns rank's log for the run to append into.
func (r *ScheduleRecorder) PE(rank int) *PELog { return r.s.PEs[rank] }

// Schedule returns the recorded schedule. Call only after the run has
// completed (shmem.Run returned).
func (r *ScheduleRecorder) Schedule() *Schedule { return &r.s }

// ActorID packs a selector creation ordinal and mailbox index into the
// actor identifier carried by handler markers. Selectors are created
// collectively in the same order on every PE, so the same ID names the
// same logical actor everywhere.
func ActorID(ord, mb int) int64 { return int64(ord)<<8 | int64(mb&0xff) }

// ActorIDParts splits an actor ID into its selector ordinal and mailbox.
// A batch count packed in the high bits (BatchActorID) is ignored, so
// marker arguments can be passed directly.
func ActorIDParts(id int64) (ord, mb int) {
	id &= actorIDMask
	return int(id >> 8), int(id & 0xff)
}

// actorIDMask covers the canonical ActorID bits; BatchActorID packs the
// message count above it.
const actorIDMask = int64(1)<<32 - 1

// BatchActorID packs an actor ID together with the number of messages a
// batched handler activation delivered. n <= 1 yields the plain ActorID,
// so per-message markers are unchanged.
func BatchActorID(ord, mb, n int) int64 {
	id := ActorID(ord, mb)
	if n > 1 {
		id |= int64(n) << 32
	}
	return id
}

// ActorIDCanon splits a handler-marker argument into the canonical actor
// ID (as produced by ActorID) and the message count the bracketed
// activation delivered (1 for per-message markers). Everything keyed by
// actor — bottleneck aggregation, HandlerSpeedup factors — must key by
// the canonical ID.
func ActorIDCanon(id int64) (canon, msgs int64) {
	msgs = id >> 32
	if msgs <= 0 {
		msgs = 1
	}
	return id & actorIDMask, msgs
}

// SkewCharge applies the slow-PE charge inflation: n plus pct percent,
// in the exact integer arithmetic Clock.Charge uses (and the what-if
// projection must reproduce). Non-positive pct is the identity.
func SkewCharge(n, pct int64) int64 {
	if pct > 0 {
		n += n * pct / 100
	}
	return n
}
