package sim

import (
	"testing"

	"actorprof/internal/tsc"
)

func TestSkewCharge(t *testing.T) {
	cases := []struct {
		n, pct, want int64
	}{
		{100, 0, 100},
		{100, 25, 125},
		{100, 100, 200},
		{3, 33, 3}, // 3*33/100 truncates to 0
		{0, 50, 0},
		{100, -10, 100}, // negative skew is "no skew"
	}
	for _, tc := range cases {
		if got := SkewCharge(tc.n, tc.pct); got != tc.want {
			t.Errorf("SkewCharge(%d, %d) = %d, want %d", tc.n, tc.pct, got, tc.want)
		}
	}
}

// TestVirtualSkewOnCharges: a skewed Virtual clock inflates every charge
// by exactly skew/100.
func TestVirtualSkewOnCharges(t *testing.T) {
	c := NewClock(Virtual)
	c.SetSkewPercent(25)
	c.Charge(100)
	if got := c.Now(); got != 125 {
		t.Errorf("Now() = %d after Charge(100) at 25%% skew, want 125", got)
	}
	c.Charge(100)
	if got := c.Now(); got != 250 {
		t.Errorf("Now() = %d after second Charge(100), want 250", got)
	}
}

// TestHybridSkewOnRealComponent is the regression test for the hybrid
// skew inconsistency: the real elapsed-cycle component of a Hybrid
// clock must be inflated by the same percentage as charges. A 100%-skew
// clock must therefore overtake an unskewed reference created slightly
// earlier once enough real cycles have elapsed - with the old behavior
// (skew applied to charges only) the skewed clock's Now() tracked plain
// elapsed cycles and stayed forever behind the reference.
func TestHybridSkewOnRealComponent(t *testing.T) {
	ref := NewClock(Hybrid) // no skew
	c := NewClock(Hybrid)
	c.SetSkewPercent(100)

	// Spin until well past the creation gap between the two clocks, so
	// the doubled elapsed component must dominate.
	start := tsc.Cycles()
	for tsc.Cycles()-start < 2_000_000 {
	}
	got, want := c.Now(), ref.Now()
	if got <= want {
		t.Errorf("100%%-skew hybrid clock Now() = %d, not ahead of unskewed reference %d: real component is unskewed", got, want)
	}
	// And the skewed charge path still applies on top.
	before := c.Now()
	c.Charge(1_000_000)
	if d := c.Now() - before; d < 2_000_000 {
		t.Errorf("Charge(1e6) at 100%% skew advanced hybrid clock by %d, want >= 2e6", d)
	}
}

// TestHybridResetRebases: Reset must rewind both components.
func TestHybridResetRebases(t *testing.T) {
	c := NewClock(Hybrid)
	c.SetSkewPercent(50)
	c.Charge(10_000)
	start := tsc.Cycles()
	for tsc.Cycles()-start < 100_000 {
	}
	before := c.Now()
	c.Reset()
	if got := c.Now(); got >= before {
		t.Errorf("Now() = %d after Reset, want below pre-reset %d", got, before)
	}
}
