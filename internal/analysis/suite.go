package analysis

// DefaultAnalyzers returns the full actorvet suite, in rule-ID order.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		BlockingHandler{},
		DivergedCollective{},
		RawOffset{},
		SendAfterDone{},
		UnpairedRegion{},
	}
}

// AnalyzerByName returns the analyzer with the given rule ID, or nil.
func AnalyzerByName(name string) Analyzer {
	for _, a := range DefaultAnalyzers() {
		if a.Name() == name {
			return a
		}
	}
	return nil
}
