package analysis

// DefaultAnalyzers returns the full actorvet suite, in rule-ID order.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		BlockingHandler{},
		DivergedCollective{},
		EscapingView{},
		RawOffset{},
		SendAfterDone{},
		SharedHandlerState{},
		StaleStaging{},
		UnpairedRegion{},
	}
}

// AnalyzerByName returns the analyzer with the given rule ID, or nil.
func AnalyzerByName(name string) Analyzer {
	for _, a := range DefaultAnalyzers() {
		if a.Name() == name {
			return a
		}
	}
	return nil
}
