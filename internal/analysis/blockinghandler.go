package analysis

import (
	"go/ast"
	"go/types"

	"actorprof/internal/actor"
	"actorprof/internal/shmem"
)

// BlockingHandler flags actor/selector message handlers that call
// blocking operations. Handlers execute one at a time inside conveyor
// progress (the paper's PROC region, carved out of COMM): a handler that
// blocks on a barrier, a nested Finish, a wait-until, or conveyor
// advance/drain stalls the very progress loop that would deliver the
// messages it is waiting for — deadlocking the PE — and meanwhile the
// stalled cycles are attributed to T_PROC, poisoning the profile the
// paper's Figures 12-13 depend on.
type BlockingHandler struct{}

// Name implements Analyzer.
func (BlockingHandler) Name() string { return "blockinghandler" }

// Doc implements Analyzer.
func (BlockingHandler) Doc() string {
	return "message handler (func passed to Selector.Process) calls a blocking operation (barrier, collective, Finish, wait-until, conveyor advance); handlers run inside conveyor progress and must complete without blocking"
}

const blockingFix = "move the blocking call out of the handler into the MAIN segment (before Done) or restructure with an extra mailbox; handlers may only compute and Send"

// isBlockedInHandler reports whether fn — a resolved callee — must not
// run inside a handler, per the runtime packages' vet contracts.
func isBlockedInHandler(fn *types.Func, blockingShmem, unsafeActor map[string]bool) bool {
	switch {
	case funcIn(fn, pkgShmem, blockingShmem):
		return true // barriers, collectives, wait-untils (PE and Int64Array)
	case funcIn(fn, pkgShmem, nameSet(shmem.CollectiveFuncs())):
		return true // AllocInt64Array blocks in Malloc's barrier
	case funcIn(fn, pkgActor, unsafeActor):
		return true // Runtime.Finish re-enters the progress loop
	case funcIn(fn, pkgConveyor, unsafeActor):
		return true // Conveyor.Advance is the progress loop
	}
	return false
}

// Run implements Analyzer.
func (a BlockingHandler) Run(pass *Pass) {
	cg, _ := pass.Prog.facts()
	blockingShmem := nameSet(shmem.BlockingMethods())
	unsafeActor := nameSet(actor.HandlerUnsafeMethods())
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if !isMethodOn(fn, pkgActor, "Selector", "Process") || len(call.Args) != 2 {
				return true
			}
			var body *ast.BlockStmt
			switch h := unparen(call.Args[1]).(type) {
			case *ast.FuncLit:
				body = h.Body
			case *ast.Ident:
				// Named handler: resolve through the call graph, which spans
				// the whole program (cross-file and cross-package alike).
				if hf, ok := info.Uses[h].(*types.Func); ok {
					if node := cg.nodeOf(hf); node != nil {
						body = node.decl.Body
					}
				}
			}
			if body == nil {
				return true
			}
			a.checkHandler(pass, body, blockingShmem, unsafeActor)
			return true
		})
	}
}

// checkHandler reports blocking calls anywhere inside the handler body,
// including closures it defines (they run on the same goroutine).
func (a BlockingHandler) checkHandler(pass *Pass, body *ast.BlockStmt, blockingShmem, unsafeActor map[string]bool) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || !isBlockedInHandler(fn, blockingShmem, unsafeActor) {
			return true
		}
		label := fn.Name()
		if recv, _, ok := callee(call); ok && recv != nil {
			if key := exprKey(recv); key != "" {
				label = key + "." + fn.Name()
			}
		}
		pass.Report(call.Pos(), blockingFix,
			"message handler calls blocking %s; handlers run inside conveyor progress, so blocking here deadlocks the PE and corrupts T_PROC attribution", label)
		return true
	})
}
