package analysis

import (
	"go/ast"

	"actorprof/internal/actor"
	"actorprof/internal/shmem"
)

// BlockingHandler flags actor/selector message handlers that call
// blocking operations. Handlers execute one at a time inside conveyor
// progress (the paper's PROC region, carved out of COMM): a handler that
// blocks on a barrier, a nested Finish, a wait-until, or conveyor
// advance/drain stalls the very progress loop that would deliver the
// messages it is waiting for — deadlocking the PE — and meanwhile the
// stalled cycles are attributed to T_PROC, poisoning the profile the
// paper's Figures 12-13 depend on.
type BlockingHandler struct{}

// Name implements Analyzer.
func (BlockingHandler) Name() string { return "blockinghandler" }

// Doc implements Analyzer.
func (BlockingHandler) Doc() string {
	return "message handler (func passed to Selector.Process) calls a blocking operation (barrier, collective, Finish, wait-until, conveyor advance); handlers run inside conveyor progress and must complete without blocking"
}

const blockingFix = "move the blocking call out of the handler into the MAIN segment (before Done) or restructure with an extra mailbox; handlers may only compute and Send"

// handlerBlockedCalls is the union of call names a handler must not make.
func handlerBlockedCalls() map[string]bool {
	set := make(map[string]bool)
	for _, m := range shmem.BlockingMethods() {
		set[m] = true
	}
	for _, m := range actor.HandlerUnsafeMethods() {
		set[m] = true
	}
	for _, fn := range shmem.CollectiveFuncs() {
		set[fn] = true // AllocInt64Array blocks in Malloc's barrier
	}
	// Int64Array.WaitUntil wraps WaitUntilInt64; same spin, same deadlock.
	set["WaitUntil"] = true
	return set
}

// Run implements Analyzer.
func (a BlockingHandler) Run(pass *Pass) {
	blocked := handlerBlockedCalls()
	for _, file := range pass.Pkg.Files {
		// Map handler functions declared as named functions in this file,
		// so Process(0, handleMsg) can be traced to handleMsg's body.
		decls := make(map[string]*ast.FuncDecl)
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Body != nil {
				decls[fd.Name.Name] = fd
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := callee(call)
			if !ok || recv == nil || name != "Process" || len(call.Args) != 2 {
				return true
			}
			// Process as a package-qualified function is something else.
			if qualifierPath(pass.Pkg, file, recv) != "" {
				return true
			}
			var body *ast.BlockStmt
			switch h := unparen(call.Args[1]).(type) {
			case *ast.FuncLit:
				body = h.Body
			case *ast.Ident:
				if fd := decls[h.Name]; fd != nil {
					body = fd.Body
				}
			}
			if body == nil {
				return true
			}
			a.checkHandler(pass, body, blocked)
			return true
		})
	}
}

// checkHandler reports blocking calls anywhere inside the handler body,
// including closures it defines (they run on the same goroutine).
func (a BlockingHandler) checkHandler(pass *Pass, body *ast.BlockStmt, blocked map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := callee(call)
		if !ok || !blocked[name] {
			return true
		}
		label := name
		if recv != nil {
			if key := exprKey(recv); key != "" {
				label = key + "." + name
			}
		}
		pass.Report(call.Pos(), blockingFix,
			"message handler calls blocking %s; handlers run inside conveyor progress, so blocking here deadlocks the PE and corrupts T_PROC attribution", label)
		return true
	})
}
