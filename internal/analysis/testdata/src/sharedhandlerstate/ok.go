// Negative cases: per-PE state and sanctioned aggregation idioms.
package fixture

import (
	"actorprof/internal/actor"
	"actorprof/internal/shmem"
	"actorprof/internal/sim"
)

func perPEState() error {
	return shmem.Run(shmem.Config{Machine: sim.Machine{NumPEs: 4, PEsPerNode: 2}}, func(pe *shmem.PE) {
		rt := actor.NewRuntime(pe, actor.RuntimeOptions{})
		var local int64
		counts := make([]int64, pe.NumPEs())
		sel, err := actor.NewActor(rt, actor.Int64Codec())
		if err != nil {
			return
		}
		sel.Process(0, func(msg int64, src int) {
			local += msg      // fine: declared inside the SPMD closure, per-PE
			counts[src] = msg // fine: element write is the aggregation idiom
		})
		rt.Finish(func() {
			sel.Start()
			sel.Done(0)
		})
		_ = local
	})
}

// perInvocationState mirrors the apps package: the whole function runs
// once per PE (it receives the per-PE Runtime), so its locals are per-PE
// even though no shmem.Run closure is lexically visible.
func perInvocationState(rt *actor.Runtime) ([]int64, error) {
	var next []int64
	sel, err := actor.NewActor(rt, actor.Int64Codec())
	if err != nil {
		return nil, err
	}
	sel.Process(0, func(msg int64, src int) {
		next = append(next, msg) // fine: local of the per-PE invocation
	})
	rt.Finish(func() {
		sel.Start()
		sel.Done(0)
	})
	return next, nil
}
