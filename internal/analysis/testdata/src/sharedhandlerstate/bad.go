// Package fixture: message handlers mutating state shared across PEs.
package fixture

import (
	"actorprof/internal/actor"
	"actorprof/internal/shmem"
	"actorprof/internal/sim"
)

var totalSeen int64

func sharedAcrossPEs() error {
	var grandTotal int64
	return shmem.Run(shmem.Config{Machine: sim.Machine{NumPEs: 4, PEsPerNode: 2}}, func(pe *shmem.PE) {
		rt := actor.NewRuntime(pe, actor.RuntimeOptions{})
		sel, err := actor.NewActor(rt, actor.Int64Codec())
		if err != nil {
			return
		}
		sel.Process(0, func(msg int64, src int) {
			totalSeen++       // line 21: package-level state, raced by every PE
			grandTotal += msg // line 22: captured from outside the SPMD closure
		})
		rt.Finish(func() {
			sel.Start()
			sel.Done(0)
		})
	})
}

var dropped int64

func countDrop(msg int64, src int) {
	dropped++ // line 34: package-level write in a named handler
}

func namedHandler(sel *actor.Selector[int64]) {
	sel.Process(0, countDrop)
}
