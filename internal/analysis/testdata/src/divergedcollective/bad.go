// Package fixture: every finding here is a deliberate SPMD divergence.
package fixture

import (
	"actorprof/internal/actor"
	"actorprof/internal/shmem"
	"actorprof/internal/trace"
)

func rankGuardedBarrier(pe *shmem.PE) {
	pe.Barrier() // fine: unconditional
	if pe.Rank() == 0 {
		pe.Barrier() // line 13: classic diverged barrier
	}
}

func taintedVariable(pe *shmem.PE) {
	me := pe.Rank()
	half := me * 2
	if half > 4 {
		total := pe.AllReduceInt64(shmem.OpSum, 1) // line 21: diverged reduction
		_ = total
	}
}

func rankBoundLoop(pe *shmem.PE, rt *actor.Runtime) {
	for i := 0; i < pe.Rank(); i++ {
		arr := shmem.AllocInt64Array(pe, 8) // line 28: diverged symmetric alloc
		_ = arr
	}
}

func rankSwitch(pe *shmem.PE, cfg trace.Config) {
	switch pe.Rank() {
	case 0:
		coll, _ := trace.NewCollector(cfg, pe.World().Machine()) // line 36: diverged collector
		_ = coll
	}
}

func divergedFinish(pe *shmem.PE, rt *actor.Runtime) {
	if pe.Node() == 1 {
		rt.Finish(func() {}) // line 43: diverged finish barrier
	}
}

func cleanCollective(pe *shmem.PE) int64 {
	if pe.Rank() == 0 {
		println("rank-guarded logging is fine")
	}
	return pe.AllReduceInt64(shmem.OpMax, int64(pe.Rank()))
}
