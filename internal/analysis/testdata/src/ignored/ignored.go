// Package fixture: deliberate violations suppressed by directives, plus
// one violation left live to prove directives do not over-suppress.
package fixture

import "actorprof/internal/shmem"

func suppressedInline(pe *shmem.PE) {
	if pe.Rank() == 0 {
		pe.Barrier() //actorvet:ignore divergedcollective
	}
}

func suppressedLineAbove(pe *shmem.PE, base, i int) {
	//actorvet:ignore rawoffset slot layout is owned here
	pe.PutInt64(1, base+8*i, 7)
}

func suppressedAllRules(pe *shmem.PE) {
	if pe.Rank() == 1 {
		//actorvet:ignore
		pe.Barrier()
	}
}

func wrongRuleDoesNotSuppress(pe *shmem.PE) {
	if pe.Rank() == 2 {
		pe.Barrier() //actorvet:ignore rawoffset (line 27: still reported)
	}
}
