// Package fixture: a well-behaved FA-BSP program; every analyzer must
// stay silent here.
package fixture

import (
	"actorprof/internal/actor"
	"actorprof/internal/papi"
	"actorprof/internal/shmem"
)

func wellBehaved(pe *shmem.PE, rt *actor.Runtime) error {
	counts := shmem.AllocInt64Array(pe, 64)
	sel, err := actor.NewActor(rt, actor.Int64Codec())
	if err != nil {
		return err
	}
	sel.Process(0, func(msg int64, srcPE int) {
		counts.Set(int(msg), counts.Get(int(msg))+1)
	})
	rt.Finish(func() {
		sel.Start()
		for i := 0; i < 100; i++ {
			sel.Send(0, int64(i%64), i%pe.NumPEs())
		}
		sel.Done(0)
	})
	total := pe.AllReduceInt64(shmem.OpSum, counts.Get(0))
	if pe.Rank() == 0 {
		println("total:", total)
	}
	return nil
}

func measuredSegment(rt *actor.Runtime, engine *papi.Engine) []int64 {
	es, _ := papi.NewEventSet(engine, papi.TOT_INS)
	rt.Pause()
	es.Start()
	deltas := es.Stop()
	rt.Resume()
	return deltas
}
