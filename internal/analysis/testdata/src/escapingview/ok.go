// Negative cases: copies and in-window uses keep every rule silent.
package fixture

import (
	"actorprof/internal/actor"
	"actorprof/internal/conveyor"
)

func copiedBeforeStore(c *conveyor.Conveyor, box *inbox) {
	item, _, ok := c.Pull()
	if !ok {
		return
	}
	box.last = append([]byte(nil), item...) // copy: the view itself never escapes
	c.Advance(false)
	_ = box.last // the copy survives progress
}

func stringCopy(c *conveyor.Conveyor) string {
	if item, _, ok := c.Pull(); ok {
		return string(item) // string conversion copies the bytes
	}
	return ""
}

func copiedForGlobal(c *conveyor.Conveyor) {
	if item, _, ok := c.Pull(); ok {
		lastMsg = append([]byte(nil), item...) // copy, then retain freely
	}
}

func inWindowUse(c *conveyor.Conveyor, sum *int) {
	for {
		item, src, ok := c.Pull()
		if !ok {
			if c.Advance(true) {
				break
			}
			continue
		}
		*sum += int(item[0]) + src // use strictly inside the borrow window
	}
}

func slotFilledInWindow(c *conveyor.Conveyor, dst int) bool {
	slot, ok := c.PushSlot(dst)
	if !ok {
		return false
	}
	for i := range slot {
		slot[i] = byte(i) // writes inside the window are the whole point
	}
	return true
}

func batchCopied(sel *actor.Selector[int64], box *keyBox) {
	sel.ProcessBatch(0, func(msgs []int64, srcPEs []int) {
		box.keys = append([]int64(nil), msgs...) // copy: the scratch never escapes
	})
}

func batchInWindow(sel *actor.Selector[int64], sum *int64) {
	sel.ProcessBatch(0, func(msgs []int64, srcPEs []int) {
		for i, m := range msgs {
			*sum += m + int64(srcPEs[i]) // in-invocation use is the whole point
		}
	})
}

func batchSendInside(sel *actor.Selector[int64]) {
	sel.ProcessBatch(0, func(msgs []int64, srcPEs []int) {
		for i := range msgs {
			// Re-entrant progress does not recycle the scratch: the
			// runtime's draining guard keeps it live for the invocation.
			sel.Send(1, msgs[i], srcPEs[i])
		}
	})
}
