// Package fixture: borrowed conveyor views escaping their borrow window.
package fixture

import (
	"actorprof/internal/actor"
	"actorprof/internal/conveyor"
)

var lastMsg []byte

type inbox struct{ last []byte }

func fieldStore(c *conveyor.Conveyor, box *inbox) {
	item, _, ok := c.Pull()
	if !ok {
		return
	}
	box.last = item // line 18: view escapes to a struct field
}

func globalStore(c *conveyor.Conveyor) {
	if item, _, ok := c.Pull(); ok {
		lastMsg = item // line 23: view escapes to a package-level variable
	}
}

func channelSend(c *conveyor.Conveyor, out chan []byte) {
	if slot, ok := c.PushSlot(1); ok {
		out <- slot // line 29: push slot escapes over a channel
	}
}

func goroutineCapture(c *conveyor.Conveyor) {
	item, _, ok := c.Pull()
	if !ok {
		return
	}
	go func() {
		_ = item[0] // line 39: view captured by a goroutine
	}()
}

func staleAfterAdvance(c *conveyor.Conveyor) byte {
	item, _, ok := c.Pull()
	if !ok {
		return 0
	}
	c.Advance(false)
	return item[0] // line 49: read after conveyor progress recycled it
}

func staleAfterSend(c *conveyor.Conveyor, sel *actor.Selector[int64]) byte {
	item, _, ok := c.Pull()
	if !ok {
		return 0
	}
	sel.Send(0, 1, 2)
	return item[0] // line 58: read after actor progress (Send may advance)
}

func stash(b []byte) { lastMsg = b }

func interprocEscape(c *conveyor.Conveyor) {
	if item, _, ok := c.Pull(); ok {
		stash(item) // line 65: callee's summary says the parameter escapes
	}
}

func pullOne(c *conveyor.Conveyor) []byte {
	item, _, _ := c.Pull()
	return item // fine: returning a view hands the borrow to the caller
}

func indirectStale(c *conveyor.Conveyor) byte {
	v := pullOne(c)
	c.Advance(false)
	return v[0] // line 77: borrowed-through-helper view read after progress
}

type keyBox struct{ keys []int64 }

var lastSrcs []int

var storedKeys []int64

func keepKeys(ks []int64) { storedKeys = ks }

func batchFieldStore(sel *actor.Selector[int64], box *keyBox) {
	sel.ProcessBatch(0, func(msgs []int64, srcPEs []int) {
		box.keys = msgs // batch scratch escapes to a struct field
	})
}

func batchGlobalSrcs(sel *actor.Selector[int64]) {
	sel.ProcessBatch(1, func(msgs []int64, srcPEs []int) {
		lastSrcs = srcPEs // source-PE scratch escapes to a package-level variable
	})
}

func batchInterprocEscape(sel *actor.Selector[int64]) {
	sel.ProcessBatch(0, func(msgs []int64, srcPEs []int) {
		keepKeys(msgs) // callee's summary says the parameter escapes
	})
}

func batchGoroutineCapture(sel *actor.Selector[int64]) {
	sel.ProcessBatch(0, func(msgs []int64, srcPEs []int) {
		go func() {
			_ = msgs[0] // batch scratch captured by a goroutine
		}()
	})
}

func batchChannelSend(sel *actor.Selector[int64], out chan []int64) {
	sel.ProcessBatch(0, func(msgs []int64, srcPEs []int) {
		out <- msgs // batch scratch escapes over a channel
	})
}
