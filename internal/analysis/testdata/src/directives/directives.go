// Package fixture: //actorvet:ignore edge cases — multi-line statement
// coverage, block-scoped suppression, unknown rule names, stale ignores.
package fixture

import "actorprof/internal/shmem"

func multiLineStatement(pe *shmem.PE, base, i int) {
	//actorvet:ignore rawoffset the slot layout is owned here
	pe.PutInt64(1,
		base+8*i,
		7)
}

func blockScoped(pe *shmem.PE) {
	//actorvet:ignore divergedcollective intentional rank-0 gate
	if pe.Rank() == 0 {
		pe.Barrier()
	}
}

func unknownRule(pe *shmem.PE) {
	if pe.Rank() == 1 {
		pe.Barrier() //actorvet:ignore nosuchrule
	}
}

func staleDirective(pe *shmem.PE, off int) {
	pe.PutInt64(1, off, 7) //actorvet:ignore rawoffset nothing raw here
}

func staleWildcard(pe *shmem.PE) {
	pe.Quiet() //actorvet:ignore
}
