// Staging buffers retained past the point the pool recycles them.
package shmem

func useAfterRelease(pe *PE) byte {
	buf := pe.getNBIBuf(64)
	buf[0] = 1
	pe.putNBIBuf(buf)
	return buf[1] // line 8: released buffer still read
}

func useAfterQuiet(pe *PE) {
	buf := pe.getNBIBuf(32)
	buf[0] = 2
	pe.Quiet()
	buf[1] = 3 // line 15: pool recycled at Quiet, write scribbles another Put
}

func pendingDataAfterBarrier(pe *PE) byte {
	w := &pe.pending[0]
	d := w.data
	pe.Barrier()
	return d[0] // line 22: staging record's bytes read after the barrier
}
