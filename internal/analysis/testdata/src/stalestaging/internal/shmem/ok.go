// Negative cases: staging buffers used strictly inside their lifetime.
package shmem

func stageAndQuiet(pe *PE, payload []byte) {
	buf := pe.getNBIBuf(len(payload))
	copy(buf, payload) // fine: writes before the release point
	pe.pending = append(pe.pending, pendingWrite{off: 0, data: buf})
	pe.Quiet()
}

func copyOutBeforeQuiet(pe *PE) []byte {
	buf := pe.getNBIBuf(16)
	buf[0] = 9
	out := append([]byte(nil), buf...) // copy: survives the quiet
	pe.Quiet()
	return out
}

func releaseThenReacquire(pe *PE) byte {
	buf := pe.getNBIBuf(8)
	pe.putNBIBuf(buf)
	buf = pe.getNBIBuf(8) // rebinding starts a fresh borrow
	return buf[0]
}
