// Package shmem is a miniature of the real RMA layer's NBI staging
// pool — just enough in-package surface (getNBIBuf/putNBIBuf, the
// pendingWrite staging record, quiet/Quiet/Barrier release points) to
// exercise the stalestaging rule's contract. The rule is path-scoped to
// packages ending in internal/shmem, which this fixture satisfies.
package shmem

type pendingWrite struct {
	off  int
	data []byte
}

// PE is the fixture's stand-in for the real per-PE handle.
type PE struct {
	pool    [][]byte
	pending []pendingWrite
}

func (pe *PE) getNBIBuf(n int) []byte {
	if len(pe.pool) == 0 {
		return make([]byte, n)
	}
	b := pe.pool[len(pe.pool)-1]
	pe.pool = pe.pool[:len(pe.pool)-1]
	return b[:n]
}

func (pe *PE) putNBIBuf(b []byte) { pe.pool = append(pe.pool, b) }

func (pe *PE) quiet() {
	for i := range pe.pending {
		pe.putNBIBuf(pe.pending[i].data)
	}
	pe.pending = pe.pending[:0]
}

// Quiet and Barrier are the public release points: both drain the
// pending writes and recycle every staging buffer.
func (pe *PE) Quiet()   { pe.quiet() }
func (pe *PE) Barrier() { pe.quiet() }

// PutNBI stages a payload — the legitimate pattern the rule must NOT
// flag: the staging buffer lives in the pending list until quiet.
func (pe *PE) PutNBI(off int, src []byte) {
	buf := pe.getNBIBuf(len(src))
	copy(buf, src)
	pe.pending = append(pe.pending, pendingWrite{off: off, data: buf})
}
