// Package fixture: handlers that block inside conveyor progress.
package fixture

import (
	"actorprof/internal/actor"
	"actorprof/internal/conveyor"
	"actorprof/internal/shmem"
)

func blockingLambdaHandler(pe *shmem.PE, rt *actor.Runtime, sel *actor.Selector[int64]) {
	sel.Process(0, func(msg int64, srcPE int) {
		pe.Barrier()         // line 12: barrier in handler
		rt.Finish(func() {}) // line 13: nested finish in handler
		sel.Send(0, msg, 1)  // fine: handlers may send
	})
}

func namedHandlerUser(sel *actor.Selector[int64]) {
	sel.Process(1, blockingNamedHandler)
}

func blockingNamedHandler(msg int64, srcPE int) {
	var pe *shmem.PE
	pe.WaitUntilInt64(8, shmem.CmpEq, msg) // line 24: wait-until in handler
}

func advanceInHandler(sel *actor.Selector[int64], conv *conveyor.Conveyor) {
	sel.Process(0, func(msg int64, srcPE int) {
		conv.Advance(false) // line 29: conveyor advance in handler
	})
}

func cleanHandler(sel *actor.Selector[int64]) {
	sel.Process(0, func(msg int64, srcPE int) {
		sel.Send(1, msg+1, int(msg)%4)
	})
}
