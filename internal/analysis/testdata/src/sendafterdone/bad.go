// Package fixture: sends racing past their Done promise.
package fixture

import "actorprof/internal/actor"

const mbCredit = 1

func straightLine(sel *actor.Selector[int64]) {
	sel.Send(0, 1, 2) // fine: before Done
	sel.Done(0)
	sel.Send(0, 1, 2) // line 11: send after Done(0)
}

func constMailbox(sel *actor.Selector[int64]) {
	sel.Done(mbCredit)
	sel.Send(mbCredit, 7, 0) // line 16: send after Done(mbCredit)
}

func afterDoneAll(sel *actor.Selector[int64]) {
	sel.DoneAll()
	sel.Send(2, 9, 3) // line 21: send after DoneAll
}

func inLoopTail(sel *actor.Selector[int64]) {
	sel.Done(0)
	for i := 0; i < 4; i++ {
		sel.Send(0, int64(i), i) // line 27: send in loop after Done
	}
}

func otherMailboxIsFine(sel *actor.Selector[int64]) {
	sel.Done(0)
	sel.Send(1, 1, 2) // fine: different mailbox
}

func conditionalDoneDoesNotLeak(sel *actor.Selector[int64], flush bool) {
	if flush {
		sel.Done(0)
	}
	sel.Send(0, 1, 2) // fine: Done was conditional
}
