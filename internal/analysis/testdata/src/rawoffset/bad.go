// Package fixture: hand-rolled symmetric-heap offset arithmetic.
package fixture

import "actorprof/internal/shmem"

func rawArithmetic(pe *shmem.PE, base int, i int) {
	pe.PutInt64(1, base+8*i, 42)          // line 7: put at computed offset
	v := pe.LoadInt64(0, base+i<<3)       // line 8: load at computed offset
	pe.StoreInt64Local(base+(i%4)*8, v)   // line 9: local store at computed offset
	_ = pe.AtomicFetchAddInt64(2, 8*i, 1) // line 10: fetch-add at computed offset
}

func cleanUses(pe *shmem.PE, off int) {
	pe.PutInt64(1, off, 42) // fine: opaque offset
	_ = pe.GetInt64(0, off) // fine
	arr := shmem.AllocInt64Array(pe, 8)
	arr.PutRemote(1, 3, 42) // fine: typed accessor bounds-checks
}
