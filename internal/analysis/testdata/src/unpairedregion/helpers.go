package fixture

// loadGraph stands in for arbitrary work between region boundaries.
func loadGraph() {}
