// Package fixture: profiling and allocation regions left open.
package fixture

import (
	"actorprof/internal/actor"
	"actorprof/internal/papi"
	"actorprof/internal/shmem"
	"actorprof/internal/trace"
)

func pauseWithoutResume(rt *actor.Runtime) {
	rt.Pause() // line 12: never resumed
	loadGraph()
}

func pausedAndResumed(rt *actor.Runtime) {
	rt.Pause()
	loadGraph()
	rt.Resume()
}

func startWithoutStop(engine *papi.Engine) {
	es, _ := papi.NewEventSet(engine, papi.TOT_INS)
	es.Start() // line 24: event set never read out
	loadGraph()
}

func startStopBalanced(engine *papi.Engine) []int64 {
	es, _ := papi.NewEventSet(engine, papi.TOT_INS)
	es.Start()
	loadGraph()
	return es.Stop()
}

func selectorStartIsNotAnEventSet(sel *actor.Selector[int64]) {
	sel.Start() // fine: selector lifecycle, not a PAPI region
	sel.Done(0)
}

func segmentEnterWithoutExit(pc *trace.PECollector) {
	tok := pc.SegmentEnter("load", 0) // line 41: segment never flushed
	_ = tok
}

func discardedMalloc(pe *shmem.PE) {
	pe.Malloc(64)     // line 46: offset dropped on the floor
	_ = pe.Malloc(32) // line 47: blank-assigned
	off := pe.Malloc(16)
	_ = off // fine: kept (even if only referenced once)
}
