// Package fixture: every finding here carries a mechanical copy fix —
// the -fix round-trip test applies them and re-vets clean.
package fixture

import (
	"actorprof/internal/actor"
	"actorprof/internal/conveyor"
)

var lastMsg []byte

type inbox struct{ last []byte }

func fieldStore(c *conveyor.Conveyor, box *inbox) {
	item, _, ok := c.Pull()
	if !ok {
		return
	}
	box.last = item // fixable: wrap in append([]byte(nil), ...)
}

func globalStore(c *conveyor.Conveyor) {
	if item, _, ok := c.Pull(); ok {
		lastMsg = item // fixable
	}
}

func channelSend(c *conveyor.Conveyor, out chan []byte) {
	if slot, ok := c.PushSlot(1); ok {
		out <- slot // fixable
	}
}

func stash(b []byte) { lastMsg = b }

func interprocEscape(c *conveyor.Conveyor) {
	if item, _, ok := c.Pull(); ok {
		stash(item) // fixable: copy at the call site
	}
}

var storedKeys []int64

func batchGlobalStore(sel *actor.Selector[int64]) {
	sel.ProcessBatch(0, func(msgs []int64, srcPEs []int) {
		storedKeys = msgs // fixable: copy uses the message element type
	})
}
