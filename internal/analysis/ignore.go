package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Suppression directives:
//
//	//actorvet:ignore rule[,rule...]      suppress on this line / statement
//	//actorvet:ignore                     suppress every rule likewise
//	//actorvet:ignore-file rule[,rule...] suppress for the whole file
//
// The line-scoped form works both as a trailing comment on the offending
// line and as a comment on the line directly above it (the gofmt-friendly
// placement). When the line it governs starts a multi-line statement or
// declaration, the directive covers the statement's whole extent —
// putting one above a multi-line if/for/composite-literal suppresses
// findings anywhere inside it (block-scoped suppression).
//
// Directives are themselves checked: a directive naming a rule that does
// not exist is a baddirective error (a typo would otherwise silently
// suppress nothing), and a directive that suppressed no finding in the
// run is a staleignore warning (the violation it justified is gone — so
// should the directive). Deliberate violations — fixtures, the conveyor
// transport's raw offset arithmetic — carry directives so that actorvet
// stays zero-findings on the repository itself.

const (
	ignoreDirective     = "//actorvet:ignore"
	ignoreFileDirective = "//actorvet:ignore-file"
)

// Names of the directive-checking pseudo-rules. They are not Analyzers —
// Run emits them while validating the ignore index — but they occupy the
// same rule namespace so they can be filtered and suppressed uniformly.
const (
	ruleBadDirective = "baddirective"
	ruleStaleIgnore  = "staleignore"
)

// directiveEntry is one parsed //actorvet:ignore[-file] comment.
type directiveEntry struct {
	file     string
	fileWide bool
	// startLine..endLine is the covered line range (line-scoped only).
	startLine, endLine int
	// rules are the named rules; the empty string means "all rules".
	rules map[string]bool
	// position locates the directive for baddirective/staleignore
	// diagnostics.
	position token.Position
	// used records whether the directive suppressed at least one finding.
	used bool
}

// ignoreIndex records every directive in a package.
type ignoreIndex struct {
	entries []*directiveEntry
}

// buildIgnoreIndex scans every comment in the package for directives.
// Statement extents come from the syntax: a directive that governs the
// first line of a multi-line statement covers through its last line.
func buildIgnoreIndex(pkg *Package) *ignoreIndex {
	idx := &ignoreIndex{}
	for _, f := range pkg.Files {
		extents := stmtExtents(pkg.Fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx.addComment(pkg, extents, c)
			}
		}
	}
	return idx
}

// stmtExtents maps each line that starts a statement or declaration to
// the last line of the longest such node starting there.
func stmtExtents(fset *token.FileSet, f *ast.File) map[int]int {
	extents := make(map[int]int)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl:
			start := fset.Position(n.Pos()).Line
			end := fset.Position(n.End()).Line
			if end > extents[start] {
				extents[start] = end
			}
		}
		return true
	})
	return extents
}

func (idx *ignoreIndex) addComment(pkg *Package, extents map[int]int, c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	pos := pkg.Fset.Position(c.Pos())
	if rest, ok := cutDirective(text, ignoreFileDirective); ok {
		idx.entries = append(idx.entries, &directiveEntry{
			file:     pos.Filename,
			fileWide: true,
			rules:    parseRules(rest),
			position: pos,
		})
		return
	}
	if rest, ok := cutDirective(text, ignoreDirective); ok {
		// Cover the directive's own line (trailing placement), the next
		// line (comment-above placement), and — when either of those
		// lines opens a multi-line statement — that statement's full
		// extent.
		end := pos.Line + 1
		if e := extents[pos.Line]; e > end {
			end = e
		}
		if e := extents[pos.Line+1]; e > end {
			end = e
		}
		idx.entries = append(idx.entries, &directiveEntry{
			file:      pos.Filename,
			startLine: pos.Line,
			endLine:   end,
			rules:     parseRules(rest),
			position:  pos,
		})
	}
}

// cutDirective matches text against the directive followed by an
// argument list, end of comment, or whitespace — so that
// "//actorvet:ignore-file" is not mistaken for "//actorvet:ignore" with
// argument "-file".
func cutDirective(text, directive string) (rest string, ok bool) {
	if !strings.HasPrefix(text, directive) {
		return "", false
	}
	rest = text[len(directive):]
	if rest == "" {
		return "", true
	}
	if rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

func parseRules(args string) map[string]bool {
	set := make(map[string]bool)
	if args == "" {
		set[""] = true // all rules
		return set
	}
	// Anything after the rule list (e.g. a prose justification) is
	// ignored: "//actorvet:ignore rawoffset transport owns the layout".
	args, _, _ = strings.Cut(args, " ")
	for _, r := range strings.Split(args, ",") {
		if r = strings.TrimSpace(r); r != "" {
			set[r] = true
		}
	}
	return set
}

// suppressed reports whether d is covered by a directive, marking the
// matching directive as used.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	hit := false
	for _, e := range idx.entries {
		if e.file != d.File || !matchRules(e.rules, d.Rule) {
			continue
		}
		if e.fileWide || (d.Line >= e.startLine && d.Line <= e.endLine) {
			e.used = true
			hit = true
			// Keep scanning: overlapping directives should all count as
			// used, or a redundant one would be falsely reported stale.
		}
	}
	return hit
}

func matchRules(set map[string]bool, rule string) bool {
	return set != nil && (set[""] || set[rule])
}

// validate emits baddirective diagnostics for rule names that do not
// exist. knownRules is the full rule namespace — every shipped analyzer
// plus the pseudo-rules — regardless of any -rules filter, so a filtered
// run still catches typos.
func (idx *ignoreIndex) validate(knownRules map[string]bool, sink func(Diagnostic)) {
	for _, e := range idx.entries {
		var bad []string
		for r := range e.rules {
			if r != "" && !knownRules[r] {
				bad = append(bad, r)
			}
		}
		if len(bad) == 0 {
			continue
		}
		sort.Strings(bad)
		sink(Diagnostic{
			Rule:     ruleBadDirective,
			Severity: severityLevels[ruleBadDirective],
			File:     e.position.Filename,
			Line:     e.position.Line,
			Col:      e.position.Column,
			Message: "//actorvet:ignore names unknown rule(s) " + strings.Join(bad, ", ") +
				"; a typo here silently suppresses nothing — fix the rule name or delete the directive",
		})
	}
}

// reportStale emits staleignore diagnostics for directives that
// suppressed nothing. A directive is only judged against the analyzers
// that actually ran: under a -rules filter, a directive for an inactive
// rule is skipped rather than falsely called stale (wildcard directives
// are judged only when the full suite ran).
func (idx *ignoreIndex) reportStale(activeRules map[string]bool, fullSuite bool, sink func(Diagnostic)) {
	for _, e := range idx.entries {
		if e.used {
			continue
		}
		judgeable := true
		for r := range e.rules {
			if r == "" {
				judgeable = fullSuite
			} else if !activeRules[r] {
				judgeable = false
			}
		}
		if !judgeable {
			continue
		}
		sink(Diagnostic{
			Rule:     ruleStaleIgnore,
			Severity: severityLevels[ruleStaleIgnore],
			File:     e.position.Filename,
			Line:     e.position.Line,
			Col:      e.position.Column,
			Message:  "//actorvet:ignore directive suppresses nothing; the violation it justified is gone — delete the directive",
		})
	}
}
