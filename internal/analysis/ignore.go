package analysis

import (
	"go/ast"
	"strings"
)

// Suppression directives:
//
//	//actorvet:ignore rule[,rule...]      suppress on this line or the next
//	//actorvet:ignore                     suppress every rule likewise
//	//actorvet:ignore-file rule[,rule...] suppress for the whole file
//
// The line-scoped form works both as a trailing comment on the offending
// line and as a comment on the line directly above it (the gofmt-friendly
// placement). Deliberate violations — fixtures, the conveyor transport's
// raw offset arithmetic — carry directives so that actorvet stays
// zero-findings on the repository itself.

const (
	ignoreDirective     = "//actorvet:ignore"
	ignoreFileDirective = "//actorvet:ignore-file"
)

// ignoreIndex records, per file, which rules are suppressed where.
type ignoreIndex struct {
	// byLine maps file -> line -> rules suppressed at that line. The
	// empty-string rule means "all rules".
	byLine map[string]map[int]map[string]bool
	// byFile maps file -> rules suppressed everywhere in it.
	byFile map[string]map[string]bool
}

// buildIgnoreIndex scans every comment in the package for directives.
func buildIgnoreIndex(pkg *Package) *ignoreIndex {
	idx := &ignoreIndex{
		byLine: make(map[string]map[int]map[string]bool),
		byFile: make(map[string]map[string]bool),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx.addComment(pkg, c)
			}
		}
	}
	return idx
}

func (idx *ignoreIndex) addComment(pkg *Package, c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	pos := pkg.Fset.Position(c.Pos())
	if rest, ok := cutDirective(text, ignoreFileDirective); ok {
		rules := idx.byFile[pos.Filename]
		if rules == nil {
			rules = make(map[string]bool)
			idx.byFile[pos.Filename] = rules
		}
		addRules(rules, rest)
		return
	}
	if rest, ok := cutDirective(text, ignoreDirective); ok {
		lines := idx.byLine[pos.Filename]
		if lines == nil {
			lines = make(map[int]map[string]bool)
			idx.byLine[pos.Filename] = lines
		}
		rules := lines[pos.Line]
		if rules == nil {
			rules = make(map[string]bool)
			lines[pos.Line] = rules
		}
		addRules(rules, rest)
	}
}

// cutDirective matches text against the directive followed by an
// argument list, end of comment, or whitespace — so that
// "//actorvet:ignore-file" is not mistaken for "//actorvet:ignore" with
// argument "-file".
func cutDirective(text, directive string) (rest string, ok bool) {
	if !strings.HasPrefix(text, directive) {
		return "", false
	}
	rest = text[len(directive):]
	if rest == "" {
		return "", true
	}
	if rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

func addRules(set map[string]bool, args string) {
	if args == "" {
		set[""] = true // all rules
		return
	}
	// Anything after the rule list (e.g. a prose justification) is
	// ignored: "//actorvet:ignore rawoffset transport owns the layout".
	args, _, _ = strings.Cut(args, " ")
	for _, r := range strings.Split(args, ",") {
		if r = strings.TrimSpace(r); r != "" {
			set[r] = true
		}
	}
}

// suppressed reports whether d is covered by a directive: file-wide, on
// d's own line, or on the line above.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	if match(idx.byFile[d.File], d.Rule) {
		return true
	}
	lines := idx.byLine[d.File]
	if lines == nil {
		return false
	}
	return match(lines[d.Line], d.Rule) || match(lines[d.Line-1], d.Rule)
}

func match(set map[string]bool, rule string) bool {
	return set != nil && (set[""] || set[rule])
}
