package analysis

import (
	"go/ast"
	"go/token"

	"actorprof/internal/actor"
	"actorprof/internal/trace"
)

// UnpairedRegion flags profiling/allocation regions that are opened but
// never closed within a function:
//
//   - Runtime.Pause without a matching Resume on the same receiver — the
//     rest of the run's trace is silently discarded;
//   - papi EventSet Start without Stop (receivers are traced back to a
//     NewEventSet call, so Selector.Start is never confused with it) —
//     the counter region never reads out, and the set stays locked;
//   - trace SegmentEnter without SegmentExit — the segment never flushes
//     into segments.txt;
//   - a collective Malloc whose result is discarded — the symmetric
//     allocation is unreferencable on every PE forever.
//
// The pairing is function-scoped by design: a region that genuinely
// spans functions is rare enough to deserve an //actorvet:ignore with a
// justification.
type UnpairedRegion struct{}

// Name implements Analyzer.
func (UnpairedRegion) Name() string { return "unpairedregion" }

// Doc implements Analyzer.
func (UnpairedRegion) Doc() string {
	return "unbalanced region within a function: Pause without Resume, PAPI EventSet Start without Stop, SegmentEnter without SegmentExit, or a Malloc whose result is discarded"
}

// pairSpec describes one opener/closer method pair.
type pairSpec struct {
	open, close string
	// eventSetOnly restricts the pair to receivers assigned from
	// NewEventSet, to disambiguate generic names like Start.
	eventSetOnly bool
	message      string
	fix          string
}

func pairSpecs() []pairSpec {
	var specs []pairSpec
	for open, close := range actor.PairedMethods() {
		specs = append(specs, pairSpec{
			open: open, close: close,
			message: "%s.%s without a matching %s in this function; trace collection stays suspended and the rest of the run's profile is silently dropped",
			fix:     "add a deferred or trailing %s, or ignore with a justification if the region intentionally spans functions",
		})
	}
	for open, close := range trace.PairedMethods() {
		specs = append(specs, pairSpec{
			open: open, close: close,
			message: "%s.%s without a matching %s in this function; the segment never flushes its cycle/PAPI deltas",
			fix:     "bracket the region with %s (or use Runtime.Segment, which pairs them for you)",
		})
	}
	specs = append(specs, pairSpec{
		open: "Start", close: "Stop", eventSetOnly: true,
		message: "%s.%s without a matching %s in this function; the PAPI event set never reads out and stays locked",
		fix:     "call %s (its return value is the counter deltas) when the region of interest ends",
	})
	return specs
}

// Run implements Analyzer.
func (a UnpairedRegion) Run(pass *Pass) {
	specs := pairSpecs()
	for _, file := range pass.Pkg.Files {
		// walkLits=false: nested function literals are inspected as part
		// of the enclosing declaration, so a pair split across a closure
		// and its enclosing function still matches, and nothing is
		// visited (or reported) twice.
		funcBodies(file, false, func(ft *ast.FuncType, body *ast.BlockStmt) {
			a.checkPairs(pass, body, specs)
			a.checkDiscardedMalloc(pass, body)
		})
	}
}

// callSite is one opener occurrence.
type callSite struct {
	pos  token.Pos
	recv string
}

// checkPairs matches openers to closers per receiver within body,
// including calls made inside nested function literals (they execute on
// the same PE goroutine, so they legitimately close regions the
// enclosing function opened).
func (a UnpairedRegion) checkPairs(pass *Pass, body *ast.BlockStmt, specs []pairSpec) {
	eventSets := eventSetReceivers(body)
	for _, spec := range specs {
		var opens []callSite
		closed := make(map[string]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := callee(call)
			if !ok || recv == nil {
				return true
			}
			key := exprKey(recv)
			if key == "" {
				return true
			}
			if spec.eventSetOnly && !eventSets[key] {
				return true
			}
			switch name {
			case spec.open:
				opens = append(opens, callSite{pos: call.Pos(), recv: key})
			case spec.close:
				closed[key] = true
			}
			return true
		})
		for _, open := range opens {
			if !closed[open.recv] {
				pass.Report(open.pos,
					sprintf1(spec.fix, open.recv+"."+spec.close),
					spec.message, open.recv, spec.open, spec.close)
			}
		}
	}
}

// eventSetReceivers returns the names of identifiers assigned from a
// NewEventSet call anywhere in body.
func eventSetReceivers(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, name, ok := callee(call); !ok || name != "NewEventSet" {
			return true
		}
		// es, err := papi.NewEventSet(...): the event set is the first
		// result.
		if id, ok := unparen(assign.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// checkDiscardedMalloc flags statement-level Malloc calls and Mallocs
// assigned only to blanks.
func (a UnpairedRegion) checkDiscardedMalloc(pass *Pass, body *ast.BlockStmt) {
	report := func(call *ast.CallExpr, recvKey string) {
		pass.Report(call.Pos(),
			"keep the returned offset (or use shmem.AllocInt64Array for a bounds-checked view); a symmetric allocation with no handle can never be addressed or reused",
			"result of collective %s.Malloc is discarded; the symmetric heap space leaks on every PE", recvKey)
	}
	isMalloc := func(s ast.Stmt) (*ast.CallExpr, string, bool) {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return nil, "", false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return nil, "", false
		}
		recv, name, ok := callee(call)
		if !ok || recv == nil || name != "Malloc" || len(call.Args) != 1 {
			return nil, "", false
		}
		key := exprKey(recv)
		return call, key, key != ""
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, key, ok := isMalloc(n); ok {
				report(call, key)
			}
		case *ast.AssignStmt:
			// Blank-only assignment: _ = pe.Malloc(n)
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			id, ok := unparen(n.Lhs[0]).(*ast.Ident)
			if !ok || id.Name != "_" {
				return true
			}
			call, ok := unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := callee(call)
			if !ok || recv == nil || name != "Malloc" || len(call.Args) != 1 {
				return true
			}
			if key := exprKey(recv); key != "" {
				report(call, key)
			}
		}
		return true
	})
}

// sprintf1 substitutes the single %s in a fix-hint template; templates
// without a verb pass through unchanged.
func sprintf1(template, arg string) string {
	for i := 0; i+1 < len(template); i++ {
		if template[i] == '%' && template[i+1] == 's' {
			return template[:i] + arg + template[i+2:]
		}
	}
	return template
}
