package analysis

import (
	"go/ast"
	"go/token"

	"actorprof/internal/actor"
	"actorprof/internal/trace"
)

// UnpairedRegion flags profiling/allocation regions that are opened but
// never closed within a function:
//
//   - Runtime.Pause without a matching Resume on the same receiver — the
//     rest of the run's trace is silently discarded;
//   - papi EventSet Start without Stop (the receiver's static type is
//     *papi.EventSet, so Selector.Start is never confused with it) — the
//     counter region never reads out, and the set stays locked;
//   - trace SegmentEnter without SegmentExit — the segment never flushes
//     into segments.txt;
//   - a collective Malloc whose result is discarded — the symmetric
//     allocation is unreferencable on every PE forever.
//
// The pairing is function-scoped by design: a region that genuinely
// spans functions is rare enough to deserve an //actorvet:ignore with a
// justification.
type UnpairedRegion struct{}

// Name implements Analyzer.
func (UnpairedRegion) Name() string { return "unpairedregion" }

// Doc implements Analyzer.
func (UnpairedRegion) Doc() string {
	return "unbalanced region within a function: Pause without Resume, PAPI EventSet Start without Stop, SegmentEnter without SegmentExit, or a Malloc whose result is discarded"
}

// pairSpec describes one opener/closer method pair on one receiver type.
type pairSpec struct {
	pkg, typ    string // the receiver's defining package and type name
	open, close string
	message     string
	fix         string
}

func pairSpecs() []pairSpec {
	var specs []pairSpec
	for open, close := range actor.PairedMethods() {
		specs = append(specs, pairSpec{
			pkg: pkgActor, typ: "Runtime", open: open, close: close,
			message: "%s.%s without a matching %s in this function; trace collection stays suspended and the rest of the run's profile is silently dropped",
			fix:     "add a deferred or trailing %s, or ignore with a justification if the region intentionally spans functions",
		})
	}
	for open, close := range trace.PairedMethods() {
		specs = append(specs, pairSpec{
			pkg: pkgTrace, typ: "PECollector", open: open, close: close,
			message: "%s.%s without a matching %s in this function; the segment never flushes its cycle/PAPI deltas",
			fix:     "bracket the region with %s (or use Runtime.Segment, which pairs them for you)",
		})
	}
	specs = append(specs, pairSpec{
		pkg: pkgPAPI, typ: "EventSet", open: "Start", close: "Stop",
		message: "%s.%s without a matching %s in this function; the PAPI event set never reads out and stays locked",
		fix:     "call %s (its return value is the counter deltas) when the region of interest ends",
	})
	return specs
}

// Run implements Analyzer.
func (a UnpairedRegion) Run(pass *Pass) {
	specs := pairSpecs()
	for _, file := range pass.Pkg.Files {
		// walkLits=false: nested function literals are inspected as part
		// of the enclosing declaration, so a pair split across a closure
		// and its enclosing function still matches, and nothing is
		// visited (or reported) twice.
		funcBodies(file, false, func(ft *ast.FuncType, body *ast.BlockStmt) {
			a.checkPairs(pass, body, specs)
			a.checkDiscardedMalloc(pass, body)
		})
	}
}

// callSite is one opener occurrence.
type callSite struct {
	pos  token.Pos
	recv string
}

// checkPairs matches openers to closers per receiver within body,
// including calls made inside nested function literals (they execute on
// the same PE goroutine, so they legitimately close regions the
// enclosing function opened).
func (a UnpairedRegion) checkPairs(pass *Pass, body *ast.BlockStmt, specs []pairSpec) {
	info := pass.Pkg.Info
	for _, spec := range specs {
		var opens []callSite
		closed := make(map[string]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			var name string
			switch {
			case isMethodOn(fn, spec.pkg, spec.typ, spec.open):
				name = spec.open
			case isMethodOn(fn, spec.pkg, spec.typ, spec.close):
				name = spec.close
			default:
				return true
			}
			recv, _, ok := callee(call)
			if !ok || recv == nil {
				return true
			}
			key := exprKey(recv)
			if key == "" {
				return true
			}
			if name == spec.open {
				opens = append(opens, callSite{pos: call.Pos(), recv: key})
			} else {
				closed[key] = true
			}
			return true
		})
		for _, open := range opens {
			if !closed[open.recv] {
				pass.Report(open.pos,
					sprintf1(spec.fix, open.recv+"."+spec.close),
					spec.message, open.recv, spec.open, spec.close)
			}
		}
	}
}

// checkDiscardedMalloc flags statement-level Malloc calls and Mallocs
// assigned only to blanks.
func (a UnpairedRegion) checkDiscardedMalloc(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	report := func(call *ast.CallExpr, recvKey string) {
		pass.Report(call.Pos(),
			"keep the returned offset (or use shmem.AllocInt64Array for a bounds-checked view); a symmetric allocation with no handle can never be addressed or reused",
			"result of collective %s.Malloc is discarded; the symmetric heap space leaks on every PE", recvKey)
	}
	discardedMalloc := func(e ast.Expr) (*ast.CallExpr, string, bool) {
		call, ok := unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, "", false
		}
		fn := calleeFunc(info, call)
		if !isMethodOn(fn, pkgShmem, "PE", "Malloc") || len(call.Args) != 1 {
			return nil, "", false
		}
		recv, _, ok := callee(call)
		if !ok || recv == nil {
			return nil, "", false
		}
		key := exprKey(recv)
		return call, key, key != ""
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, key, ok := discardedMalloc(n.X); ok {
				report(call, key)
			}
		case *ast.AssignStmt:
			// Blank-only assignment: _ = pe.Malloc(n)
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			if id, ok := unparen(n.Lhs[0]).(*ast.Ident); !ok || id.Name != "_" {
				return true
			}
			if call, key, ok := discardedMalloc(n.Rhs[0]); ok {
				report(call, key)
			}
		}
		return true
	})
}

// sprintf1 substitutes the single %s in a fix-hint template; templates
// without a verb pass through unchanged.
func sprintf1(template, arg string) string {
	for i := 0; i+1 < len(template); i++ {
		if template[i] == '%' && template[i+1] == 's' {
			return template[:i] + arg + template[i+2:]
		}
	}
	return template
}
