package analysis

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// TextEdit is one byte-range replacement in a source file. An insertion
// has Offset == End. Offsets are 0-based byte offsets into the file as
// loaded.
type TextEdit struct {
	File    string
	Offset  int
	End     int
	NewText string
}

// ApplyFixes applies every mechanical fix carried by diags to the files
// on disk, gofmt-ing each patched file through go/format before writing
// (a fix that does not survive formatting — i.e. does not parse — aborts
// the whole file, leaving it untouched). It returns the files written.
//
// Identical edits are de-duplicated (two findings may both want the same
// const declaration inserted); remaining overlapping edits are a
// conflict and abort that file.
func ApplyFixes(diags []Diagnostic) ([]string, error) {
	byFile := make(map[string][]TextEdit)
	for _, d := range diags {
		for _, e := range d.Edits {
			byFile[e.File] = append(byFile[e.File], e)
		}
	}
	var files []string
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	var written []string
	for _, file := range files {
		edits := dedupeEdits(byFile[file])
		src, err := os.ReadFile(file)
		if err != nil {
			return written, fmt.Errorf("fix: %w", err)
		}
		patched, err := applyEdits(src, edits)
		if err != nil {
			return written, fmt.Errorf("fix: %s: %w", file, err)
		}
		formatted, err := format.Source(patched)
		if err != nil {
			return written, fmt.Errorf("fix: %s: patched source does not parse (fix bug): %w", file, err)
		}
		if err := os.WriteFile(file, formatted, 0o644); err != nil {
			return written, fmt.Errorf("fix: %w", err)
		}
		written = append(written, file)
	}
	return written, nil
}

// dedupeEdits sorts edits by position and drops exact duplicates.
func dedupeEdits(edits []TextEdit) []TextEdit {
	sort.Slice(edits, func(i, j int) bool {
		a, b := edits[i], edits[j]
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.NewText < b.NewText
	})
	out := edits[:0]
	for i, e := range edits {
		if i > 0 && e == edits[i-1] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// applyEdits rewrites src back-to-front so earlier offsets stay valid.
// edits must be sorted; overlapping ranges are an error.
func applyEdits(src []byte, edits []TextEdit) ([]byte, error) {
	for i, e := range edits {
		if e.Offset < 0 || e.End < e.Offset || e.End > len(src) {
			return nil, fmt.Errorf("edit out of range [%d,%d) of %d bytes", e.Offset, e.End, len(src))
		}
		// Two insertions at the same offset do not overlap; a replacement
		// reaching into the next edit's range does.
		if i > 0 && e.Offset < edits[i-1].End {
			return nil, fmt.Errorf("conflicting edits at offset %d", e.Offset)
		}
	}
	out := append([]byte(nil), src...)
	for i := len(edits) - 1; i >= 0; i-- {
		e := edits[i]
		out = append(out[:e.Offset], append([]byte(e.NewText), out[e.End:]...)...)
	}
	return out, nil
}
