package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedHandlerState flags message handlers that mutate state shared
// across PEs instead of routing the update through Send. Inside
// shmem.Run every PE executes its own invocation of the SPMD body
// closure, so variables declared inside that closure are per-PE — but a
// handler that writes a package-level variable, or a variable captured
// from outside the SPMD closure, is mutating memory that every PE's
// handlers race on. On the in-process simulator this merely corrupts
// counters; under the actor model's ownership discipline (state belongs
// to exactly one PE's actor, mutated only by its own handlers) it is a
// correctness bug that Open item 1's multi-process transport would turn
// into a real data race. Element writes (hist[pe.Rank()] = …) are the
// sanctioned aggregation idiom and are not flagged.
type SharedHandlerState struct{}

// Name implements Analyzer.
func (SharedHandlerState) Name() string { return "sharedhandlerstate" }

// Doc implements Analyzer.
func (SharedHandlerState) Doc() string {
	return "message handler mutates a variable shared across PEs (package-level, or captured from outside the shmem.Run SPMD closure); handler state must be owned by one PE's actor and updated via Send"
}

const sharedStateFix = "move the variable into the SPMD closure (per-PE), or Send the update to the PE that owns it and mutate it in that PE's handler"

// Run implements Analyzer.
func (a SharedHandlerState) Run(pass *Pass) {
	cg, _ := pass.Prog.facts()
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// The SPMD roots: every closure passed to shmem.Run in this file.
		var roots []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(info, call); isFunc(fn, pkgShmem, "Run") && len(call.Args) == 2 {
				if lit, ok := unparen(call.Args[1]).(*ast.FuncLit); ok {
					roots = append(roots, lit)
				}
			}
			return true
		})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if !isMethodOn(fn, pkgActor, "Selector", "Process") || len(call.Args) != 2 {
					return true
				}
				handler, root := resolveHandler(cg, info, call.Args[1], roots, fd)
				if handler == nil {
					return true
				}
				a.checkHandler(pass, handler, root)
				return true
			})
		}
	}
}

// resolveHandler finds the handler body for a Process argument — a
// function literal or a reference to a declared function — and the scope
// that counts as "this PE's state": the enclosing shmem.Run closure when
// there is one, otherwise the enclosing function declaration. The
// fallback matters: a function like apps.BFS takes the per-PE Runtime as
// a parameter and is invoked once per PE from inside the SPMD closure,
// so its locals are per-PE state even though no shmem.Run is lexically
// visible — only package-level writes (and writes escaping the
// declaration, which cannot happen for an *ast.Ident) are shared.
func resolveHandler(cg *callGraph, info *types.Info, arg ast.Expr, roots []ast.Node, encl *ast.FuncDecl) (body *ast.BlockStmt, root ast.Node) {
	switch h := unparen(arg).(type) {
	case *ast.FuncLit:
		root = ast.Node(encl)
		for _, r := range roots {
			if h.Pos() >= r.Pos() && h.End() <= r.End() {
				root = r
				break
			}
		}
		return h.Body, root
	case *ast.Ident:
		if fn, ok := info.Uses[h].(*types.Func); ok {
			if node := cg.nodeOf(fn); node != nil {
				return node.decl.Body, node.decl
			}
		}
	}
	return nil, nil
}

// checkHandler flags whole-variable writes to shared state anywhere in
// the handler body, including closures it defines (same goroutine).
func (a SharedHandlerState) checkHandler(pass *Pass, body *ast.BlockStmt, root ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, l := range s.Lhs {
				a.checkWrite(pass, l, root)
			}
		case *ast.IncDecStmt:
			a.checkWrite(pass, s.X, root)
		}
		return true
	})
}

// checkWrite reports target when it is a whole variable owned outside
// the PE's SPMD scope. Selector and index targets are skipped: field
// state belongs to the receiver's owner and element writes are the
// per-rank aggregation idiom.
func (a SharedHandlerState) checkWrite(pass *Pass, target ast.Expr, root ast.Node) {
	id, ok := unparen(target).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj, ok := pass.Pkg.Info.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	switch {
	case isPackageLevel(obj):
		pass.Report(id.Pos(), sharedStateFix,
			"message handler writes package-level variable %s; every PE's handlers share it, so concurrent supersteps race — actor state must be owned by one PE and updated via Send", id.Name)
	case obj.Pos() < root.Pos() || obj.Pos() > root.End():
		pass.Report(id.Pos(), sharedStateFix,
			"message handler writes %s, which is captured from outside this PE's SPMD closure and therefore shared by every PE's handlers — own it in one PE's actor and update it via Send", id.Name)
	}
}
