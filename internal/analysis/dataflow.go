package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the per-function dataflow engine behind the lifetime
// rules (escapingview, stalestaging). It tracks values — identified by
// their types.Object, with real whole-program type information — from
// the calls that produce them through assignments, slicing, control
// flow, closures, and calls, and detects the two failure modes of a
// borrowed buffer:
//
//   - escape: the value is stored somewhere that outlives the borrow
//     (struct field, global, channel, slice/map element, goroutine
//     capture, or a callee that does any of those per its summary);
//   - staleness: the value is read after an operation that recycles its
//     backing storage (conveyor progress, pool release, quiet).
//
// Unresolvable calls (function values, interface methods) are treated
// optimistically — no escape, no progress — so findings stay pinpointed
// causes, never may-alias noise.

// taintSpec parameterizes the engine for one rule.
type taintSpec struct {
	// sourceResults returns the result indices of a resolved call that
	// produce tracked values, or nil. fn is never nil.
	sourceResults func(fn *types.Func) []int
	// sourceExpr reports whether a (non-call) expression produces a
	// tracked value — e.g. reading a staging buffer out of pendingNBI.
	// May be nil.
	sourceExpr func(info *types.Info, e ast.Expr) bool
	// invalidates returns a short phrase when a resolved call recycles
	// the storage behind every tracked value ("conveyor progress
	// (Advance)"), or "".
	invalidates func(fn *types.Func) string
	// releaseArgs returns the argument indices a resolved call releases
	// (the value must not be used afterwards), or nil.
	releaseArgs func(fn *types.Func) []int
	// batchHandlerArg, when non-nil, returns the handler-function
	// argument index of a resolved call that installs a data-parallel
	// batch handler (actor.BatchHandlerMethods), or -1. The handler
	// literal's slice parameters are borrowed runtime scratch, seeded as
	// sticky tracked values: retaining them past the handler return is
	// an escape, but progress inside the handler does not stale them
	// (the runtime's re-entrancy guard keeps the scratch live for the
	// whole invocation).
	batchHandlerArg func(fn *types.Func) int
	// describe names the tracked value class in messages, e.g.
	// "borrowed conveyor view".
	describe string
	// escapeFix and staleFix are the fix hints attached to findings.
	escapeFix string
	staleFix  string
	// summaries, when non-nil, supplies interprocedural facts: callee
	// escapes, callee-transitive invalidation, borrowed returns.
	summaries *summaryTable
	// copyFixable marks escapes as mechanically fixable by wrapping the
	// stored value in append([]byte(nil), v...).
	copyFixable bool
	// trackEscapes enables escape (store/send/capture) reporting. Rules
	// whose tracked values legitimately live in fields until an explicit
	// release (stalestaging) leave it false and get staleness checks only.
	trackEscapes bool
}

// taint is the tracked state of one value.
type taint struct {
	origin string    // what produced it, for messages ("conveyor.Pull")
	pos    token.Pos // where it was produced
	root   types.Object
	// staleBy, when non-empty, names the call that invalidated the value
	// (further uses are violations).
	staleBy  string
	stalePos token.Pos
	// sticky exempts the value from invalidation: batch-handler scratch
	// stays valid across handler-internal progress.
	sticky bool
}

// summaryTable holds the interprocedural function summaries computed by
// a bounded fixpoint over the whole program.
type summaryTable struct {
	byFunc map[*types.Func]*funcSummary
}

// funcSummary is what the engine knows about calling a function without
// re-walking its body at every call site.
type funcSummary struct {
	// paramEscapes[i] reports that argument i is stored somewhere that
	// outlives the call.
	paramEscapes []bool
	// borrowedResults[i] reports that result i is (derived from) a
	// tracked source produced inside the callee.
	borrowedResults []bool
	// invalidates reports that calling the function (transitively) makes
	// progress that recycles tracked storage.
	invalidates bool
}

func (t *summaryTable) of(fn *types.Func) *funcSummary {
	if t == nil || fn == nil {
		return nil
	}
	return t.byFunc[fn.Origin()]
}

// taintWalker walks one function body in source order.
type taintWalker struct {
	info *types.Info
	spec *taintSpec

	// vars maps live tracked objects to their state. Value semantics:
	// branch clones copy the map so sibling branches stay independent.
	vars map[types.Object]taint

	// reportedAt de-duplicates findings across loop re-walks and branch
	// clones; shared by every clone of one walk.
	reportedAt map[token.Pos]bool

	// report receives findings; nil in summary mode.
	report func(pos token.Pos, fix, format string, args ...any)

	// collect receives summary facts; nil in reporting mode.
	collect *summaryCollector

	// edits, when non-nil, lets the walker attach mechanical fixes. typ
	// is the escaping expression's static type (nil when unknown), so
	// the copy wraps in the right slice type: append([]T(nil), v...).
	edits func(pos token.Pos, valueEnd token.Pos, typ types.Type)
}

// summaryCollector accumulates one function's summary during a
// summary-mode walk.
type summaryCollector struct {
	params      []types.Object // parameter objects by index
	escaped     map[types.Object]bool
	results     map[int]bool
	invalidates bool
}

func (w *taintWalker) clone() *taintWalker {
	cp := *w
	cp.vars = make(map[types.Object]taint, len(w.vars))
	for k, v := range w.vars {
		cp.vars[k] = v
	}
	return &cp
}

// merge unions another walker's post-branch state into w: a value
// invalidated on either path is invalidated, a value tracked on either
// path is tracked.
func (w *taintWalker) merge(o *taintWalker) {
	for obj, t := range o.vars {
		cur, ok := w.vars[obj]
		if !ok || (cur.staleBy == "" && t.staleBy != "") {
			w.vars[obj] = t
		}
	}
}

// walkBody processes a statement list in source order.
func (w *taintWalker) walkBody(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	for _, s := range body.List {
		w.walkStmt(s)
	}
}

func (w *taintWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.evalExpr(s.X)
	case *ast.AssignStmt:
		w.handleAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.handleValueSpec(vs)
				}
			}
		}
	case *ast.IncDecStmt:
		w.evalExpr(s.X)
	case *ast.ReturnStmt:
		for i, r := range s.Results {
			w.evalExpr(r)
			if w.collect != nil && w.exprTainted(r) {
				if t, ok := w.taintOf(r); ok && t.root == nil {
					w.collect.results[i] = true
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.evalExpr(s.Cond)
		body := w.clone()
		body.walkBody(s.Body)
		// A branch that cannot fall through (return/break/continue/panic)
		// contributes nothing to the post-if state: `if !ok { return }`
		// must not leak the early-exit path's invalidations into the code
		// that only runs when ok held.
		if !terminates(s.Body.List) {
			w.merge(body)
		}
		if s.Else != nil {
			els := w.clone()
			els.walkStmt(s.Else)
			if block, ok := s.Else.(*ast.BlockStmt); !ok || !terminates(block.List) {
				w.merge(els)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		// Two passes over the body expose back-edge staleness: a value
		// produced in iteration k and used at the top of iteration k+1
		// after progress at the bottom of iteration k.
		for pass := 0; pass < 2; pass++ {
			if s.Cond != nil {
				w.evalExpr(s.Cond)
			}
			b := w.clone()
			b.walkBody(s.Body)
			if s.Post != nil {
				b.walkStmt(s.Post)
			}
			w.merge(b)
		}
	case *ast.RangeStmt:
		w.evalExpr(s.X)
		for pass := 0; pass < 2; pass++ {
			b := w.clone()
			b.killLHS(s.Key)
			b.killLHS(s.Value)
			b.walkBody(s.Body)
			w.merge(b)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.evalExpr(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			b := w.clone()
			for _, e := range cc.List {
				b.evalExpr(e)
			}
			for _, cs := range cc.Body {
				b.walkStmt(cs)
			}
			w.merge(b)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			b := w.clone()
			for _, cs := range cc.Body {
				b.walkStmt(cs)
			}
			w.merge(b)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			b := w.clone()
			if comm.Comm != nil {
				b.walkStmt(comm.Comm)
			}
			for _, cs := range comm.Body {
				b.walkStmt(cs)
			}
			w.merge(b)
		}
	case *ast.BlockStmt:
		w.walkBody(s)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.GoStmt:
		w.checkGoroutineCapture(s.Call)
	case *ast.DeferStmt:
		// A deferred call runs at function exit: its argument escapes the
		// statement's lifetime only in the capture sense; check sinks but
		// apply no progress effect (it happens after everything else).
		for _, a := range s.Call.Args {
			w.evalExpr(a)
		}
	case *ast.SendStmt:
		w.evalExpr(s.Chan)
		w.evalExpr(s.Value)
		if w.exprTainted(s.Value) {
			w.reportEscape(s.Value, "a channel send")
		}
	}
}

// terminates reports whether a statement list cannot fall through: it
// ends in return, break, continue, goto, or a panic call.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

// handleValueSpec treats var declarations with initializers like
// assignments.
func (w *taintWalker) handleValueSpec(vs *ast.ValueSpec) {
	for _, v := range vs.Values {
		w.evalExpr(v)
	}
	switch {
	case len(vs.Values) == len(vs.Names):
		for i, name := range vs.Names {
			w.bindIdent(name, vs.Values[i], w.exprTainted(vs.Values[i]))
		}
	case len(vs.Values) == 1:
		if call, ok := unparen(vs.Values[0]).(*ast.CallExpr); ok {
			tainted := w.callResultTaints(call)
			for i, name := range vs.Names {
				w.bindIdent(name, vs.Values[0], tainted[i])
			}
		}
	}
}

// handleAssign evaluates RHS uses and sinks, then re-binds LHS targets.
func (w *taintWalker) handleAssign(a *ast.AssignStmt) {
	for _, r := range a.Rhs {
		w.evalExpr(r)
	}
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		// Compound assignment (+=, |=, …): the LHS is read too.
		for _, l := range a.Lhs {
			w.evalExpr(l)
		}
		return
	}
	// Work out which LHS positions receive tracked values.
	tainted := make(map[int]bool)
	if len(a.Lhs) == len(a.Rhs) {
		for i, r := range a.Rhs {
			tainted[i] = w.exprTainted(r)
		}
	} else if len(a.Rhs) == 1 {
		if call, ok := unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			tainted = w.callResultTaints(call)
		}
	}
	for i, l := range a.Lhs {
		switch lhs := unparen(l).(type) {
		case *ast.Ident:
			if obj := w.objOf(lhs); obj != nil && isPackageLevel(obj) && tainted[i] {
				w.reportEscapeAt(a.Rhs[min(i, len(a.Rhs)-1)], l.Pos(), "package-level variable "+lhs.Name)
				continue
			}
			w.bindIdent(lhs, rhsFor(a, i), tainted[i])
		case *ast.SelectorExpr:
			w.evalExpr(lhs.X)
			if tainted[i] {
				w.reportEscapeAt(a.Rhs[min(i, len(a.Rhs)-1)], l.Pos(), "field "+exprKey(lhs))
			}
		case *ast.IndexExpr:
			w.evalExpr(lhs.X)
			w.evalExpr(lhs.Index)
			if tainted[i] {
				w.reportEscapeAt(a.Rhs[min(i, len(a.Rhs)-1)], l.Pos(), "element of "+exprKey(lhs.X))
			}
		case *ast.StarExpr:
			w.evalExpr(lhs.X)
			if tainted[i] {
				w.reportEscapeAt(a.Rhs[min(i, len(a.Rhs)-1)], l.Pos(), "pointer target")
			}
		}
	}
}

// rhsFor returns the RHS expression feeding LHS index i (the single call
// for tuple assignments).
func rhsFor(a *ast.AssignStmt, i int) ast.Expr {
	if len(a.Lhs) == len(a.Rhs) {
		return a.Rhs[i]
	}
	return a.Rhs[0]
}

// bindIdent re-binds an identifier: tracked values start (or restart) a
// taint, anything else kills the previous one.
func (w *taintWalker) bindIdent(id *ast.Ident, from ast.Expr, tainted bool) {
	obj := w.objOf(id)
	if obj == nil || id.Name == "_" {
		return
	}
	if !tainted {
		delete(w.vars, obj)
		return
	}
	origin, root := w.originOf(from)
	w.vars[obj] = taint{origin: origin, pos: id.Pos(), root: root}
}

// killLHS clears the taint of a range key/value target.
func (w *taintWalker) killLHS(e ast.Expr) {
	if e == nil {
		return
	}
	if id, ok := unparen(e).(*ast.Ident); ok {
		if obj := w.objOf(id); obj != nil {
			delete(w.vars, obj)
		}
	}
}

// objOf resolves an identifier to its object (definition or use).
func (w *taintWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.info.Defs[id]; obj != nil {
		return obj
	}
	return w.info.Uses[id]
}

// originOf derives the message label and summary root for a value
// produced by expr.
func (w *taintWalker) originOf(expr ast.Expr) (origin string, root types.Object) {
	if t, ok := w.taintOf(expr); ok {
		return t.origin, t.root
	}
	if call, ok := unparen(expr).(*ast.CallExpr); ok {
		if fn := calleeFunc(w.info, call); fn != nil {
			return fn.Name(), nil
		}
	}
	return w.spec.describe, nil
}

// taintOf returns the taint state behind an expression, walking through
// slices, parens, and conversions to the underlying tracked object.
func (w *taintWalker) taintOf(e ast.Expr) (taint, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj := w.objOf(e); obj != nil {
			t, ok := w.vars[obj]
			return t, ok
		}
	case *ast.SliceExpr:
		return w.taintOf(e.X)
	}
	return taint{}, false
}

// exprTainted reports whether evaluating e yields a tracked value.
func (w *taintWalker) exprTainted(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := w.objOf(e)
		if obj == nil {
			return false
		}
		_, ok := w.vars[obj]
		return ok
	case *ast.SliceExpr:
		return w.exprTainted(e.X)
	case *ast.SelectorExpr:
		if w.spec.sourceExpr != nil && w.spec.sourceExpr(w.info, e) {
			return true
		}
		return false
	case *ast.CallExpr:
		return w.callExprTainted(e)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if w.exprTainted(elt) {
				return true
			}
		}
		return false
	}
	return false
}

// callExprTainted reports whether a call's (single) value is tracked:
// conversions propagate (except to string, which copies), append
// propagates its base and non-spread element taints (spread copies the
// elements), and resolved calls consult sources and summaries.
func (w *taintWalker) callExprTainted(call *ast.CallExpr) bool {
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion. string(v) copies; everything else shares backing.
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.String {
			return false
		}
		if len(call.Args) == 1 {
			return w.exprTainted(call.Args[0])
		}
		return false
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := w.info.Uses[id].(*types.Builtin); isBuiltin {
			if call.Ellipsis.IsValid() {
				// append(dst, v...) copies v's bytes into dst: the result
				// is tracked only if dst itself is.
				return w.exprTainted(call.Args[0])
			}
			for _, a := range call.Args {
				if w.exprTainted(a) {
					return true
				}
			}
			return false
		}
	}
	return w.callResultTaints(call)[0]
}

// callResultTaints returns which results of a call are tracked values.
func (w *taintWalker) callResultTaints(call *ast.CallExpr) map[int]bool {
	out := make(map[int]bool)
	fn := calleeFunc(w.info, call)
	if fn == nil {
		return out
	}
	for _, i := range w.spec.sourceResults(fn) {
		out[i] = true
	}
	if s := w.spec.summaries.of(fn); s != nil {
		for i, b := range s.borrowedResults {
			if b {
				out[i] = true
			}
		}
	}
	return out
}

// evalExpr walks an expression in evaluation order, reporting stale
// uses, escapes into callees, and release/invalidation effects.
func (w *taintWalker) evalExpr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		w.checkUse(e)
	case *ast.ParenExpr:
		w.evalExpr(e.X)
	case *ast.SelectorExpr:
		w.evalExpr(e.X)
	case *ast.IndexExpr:
		w.evalExpr(e.X)
		w.evalExpr(e.Index)
	case *ast.IndexListExpr:
		w.evalExpr(e.X)
	case *ast.SliceExpr:
		w.evalExpr(e.X)
		w.evalExpr(e.Low)
		w.evalExpr(e.High)
		w.evalExpr(e.Max)
	case *ast.StarExpr:
		w.evalExpr(e.X)
	case *ast.UnaryExpr:
		w.evalExpr(e.X)
	case *ast.BinaryExpr:
		w.evalExpr(e.X)
		w.evalExpr(e.Y)
	case *ast.TypeAssertExpr:
		w.evalExpr(e.X)
	case *ast.KeyValueExpr:
		w.evalExpr(e.Value)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.evalExpr(elt)
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if w.exprTainted(v) {
				w.reportEscape(v, "a composite literal")
			}
		}
	case *ast.FuncLit:
		// Function literals execute (or are overwhelmingly likely to
		// execute) at their lexical position in this codebase's idioms
		// (rt.Finish(func(){…})); walk them inline so captured tracked
		// values stay visible.
		w.walkBody(e.Body)
	case *ast.CallExpr:
		w.evalCall(e)
	}
}

// evalCall handles argument sinks and the callee's effects.
func (w *taintWalker) evalCall(call *ast.CallExpr) {
	// Conversions and builtins have no effects beyond their operands.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			w.evalExpr(a)
		}
		return
	}
	fn := calleeFunc(w.info, call)
	// Batch-handler registration: seed the handler literal's slice
	// parameters as tracked scratch BEFORE walking the literal body, so
	// the walk sees retention of msgs/srcPEs as escapes.
	if fn != nil && w.spec.batchHandlerArg != nil {
		if idx := w.spec.batchHandlerArg(fn); idx >= 0 && idx < len(call.Args) {
			if lit, ok := unparen(call.Args[idx]).(*ast.FuncLit); ok {
				w.seedBatchScratch(fn, lit)
			}
		}
	}
	w.evalExpr(call.Fun)
	for _, a := range call.Args {
		w.evalExpr(a)
	}
	if fn == nil {
		return
	}
	// Release effects: the argument's storage returns to its pool.
	for _, idx := range w.spec.releaseArgs(fn) {
		if idx >= len(call.Args) {
			continue
		}
		if id, ok := unparen(call.Args[idx]).(*ast.Ident); ok {
			if obj := w.objOf(id); obj != nil {
				if t, tracked := w.vars[obj]; tracked && t.staleBy == "" {
					t.staleBy = fn.Name() + " released it"
					t.stalePos = call.Pos()
					w.vars[obj] = t
				}
			}
		}
	}
	// Escapes into callees, per summary.
	if s := w.spec.summaries.of(fn); s != nil {
		for i, a := range call.Args {
			if i < len(s.paramEscapes) && s.paramEscapes[i] && w.exprTainted(a) {
				w.reportEscape(a, "call to "+fn.Name()+", which stores it")
			}
		}
	}
	// Invalidation: progress recycles every borrowed buffer.
	label := w.spec.invalidates(fn)
	if label == "" {
		if s := w.spec.summaries.of(fn); s != nil && s.invalidates {
			label = fn.Name() + " (makes conveyor progress)"
		}
	}
	if label != "" {
		if w.collect != nil {
			w.collect.invalidates = true
		}
		for obj, t := range w.vars {
			if t.staleBy == "" && !t.sticky {
				t.staleBy = label
				t.stalePos = call.Pos()
				w.vars[obj] = t
			}
		}
	}
}

// seedBatchScratch marks the slice parameters of a batch-handler
// literal as tracked borrowed scratch. The taints are sticky (progress
// inside the handler does not recycle the scratch) and rootless (they
// are runtime-owned, not caller-owned, so summary mode must not fold
// them into paramEscapes).
func (w *taintWalker) seedBatchScratch(fn *types.Func, lit *ast.FuncLit) {
	if lit.Type.Params == nil {
		return
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			obj := w.info.Defs[name]
			if obj == nil || !isSliceish(obj.Type()) {
				continue
			}
			w.vars[obj] = taint{
				origin: fn.Name() + " scratch parameter " + name.Name,
				pos:    name.Pos(),
				sticky: true,
			}
		}
	}
}

// checkUse reports a read of a stale tracked value.
func (w *taintWalker) checkUse(id *ast.Ident) {
	obj := w.objOf(id)
	if obj == nil {
		return
	}
	t, ok := w.vars[obj]
	if !ok || t.staleBy == "" {
		return
	}
	if w.reportedAt[id.Pos()] {
		return
	}
	w.reportedAt[id.Pos()] = true
	delete(w.vars, obj) // one finding per staleness, not one per use
	if w.report != nil {
		w.report(id.Pos(), w.spec.staleFix,
			"%s %q (from %s) is used after %s; the backing bytes may already be overwritten — copy them before that point",
			w.spec.describe, id.Name, t.origin, t.staleBy)
	}
}

// checkGoroutineCapture flags tracked values crossing into a goroutine:
// arguments of go f(v), and free variables of go func(){…}.
func (w *taintWalker) checkGoroutineCapture(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.evalExpr(a)
		if w.exprTainted(a) {
			w.reportEscape(a, "a goroutine argument")
		}
	}
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := w.info.Uses[id]; obj != nil {
				if t, tracked := w.vars[obj]; tracked && !w.reportedAt[id.Pos()] {
					if w.collect != nil {
						if t.root != nil {
							w.collect.escaped[t.root] = true
						}
					} else if w.report != nil && w.spec.trackEscapes {
						w.reportedAt[id.Pos()] = true
						w.report(id.Pos(), w.spec.escapeFix,
							"%s %q (from %s) is captured by a goroutine; it outlives the borrow — copy it first",
							w.spec.describe, id.Name, t.origin)
						delete(w.vars, obj)
					}
				}
			}
			return true
		})
	}
}

// reportEscape reports that the tracked value in e escapes to dest.
func (w *taintWalker) reportEscape(e ast.Expr, dest string) {
	w.reportEscapeAt(e, e.Pos(), dest)
}

func (w *taintWalker) reportEscapeAt(e ast.Expr, pos token.Pos, dest string) {
	t, _ := w.taintOf(e)
	if w.collect != nil {
		if t.root != nil {
			w.collect.escaped[t.root] = true
		}
		return
	}
	if !w.spec.trackEscapes || w.reportedAt[pos] {
		return
	}
	w.reportedAt[pos] = true
	origin := t.origin
	if origin == "" {
		origin = w.spec.describe
	}
	if w.report != nil {
		if w.edits != nil && w.spec.copyFixable {
			var typ types.Type
			if tv, ok := w.info.Types[e]; ok {
				typ = tv.Type
			}
			w.edits(e.Pos(), e.End(), typ)
		}
		w.report(pos, w.spec.escapeFix,
			"%s (from %s) escapes to %s; the backing buffer is recycled by later progress — store a copy instead",
			w.spec.describe, origin, dest)
	}
}

// newTaintWalker creates a reporting-mode walker.
func newTaintWalker(info *types.Info, spec *taintSpec, report func(pos token.Pos, fix, format string, args ...any)) *taintWalker {
	return &taintWalker{
		info:       info,
		spec:       spec,
		vars:       make(map[types.Object]taint),
		reportedAt: make(map[token.Pos]bool),
		report:     report,
	}
}

// computeSummaries runs the bounded interprocedural fixpoint for spec
// over every function in the program. Four passes bound the transitive
// chains (deeper real-world chains are vanishingly rare, and missing one
// errs optimistic, never wrong-positive).
func computeSummaries(prog *Program, cg *callGraph, spec *taintSpec) *summaryTable {
	table := &summaryTable{byFunc: make(map[*types.Func]*funcSummary)}
	specWith := *spec
	specWith.summaries = table
	for pass := 0; pass < 4; pass++ {
		changed := false
		for fn, node := range cg.funcs {
			sum := summarizeFunc(prog, node, &specWith)
			prev := table.byFunc[fn]
			if prev == nil || !summariesEqual(prev, sum) {
				table.byFunc[fn] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return table
}

// summarizeFunc walks one function in summary mode: parameters are
// seeded as tracked-from-caller, sources create tracked-from-here, and
// the collector records which parameters escape, which results are
// borrowed, and whether the body makes progress.
func summarizeFunc(prog *Program, node *funcNode, spec *taintSpec) *funcSummary {
	sig := node.obj.Type().(*types.Signature)
	col := &summaryCollector{
		escaped: make(map[types.Object]bool),
		results: make(map[int]bool),
	}
	w := &taintWalker{
		info:       prog.Info,
		spec:       spec,
		vars:       make(map[types.Object]taint),
		reportedAt: make(map[token.Pos]bool),
		collect:    col,
	}
	// Seed slice parameters as caller-owned tracked values. Any slice
	// type qualifies: conveyor views are []byte/[]int32, and batch
	// scratch handed to helpers can be a slice of any message type.
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		col.params = append(col.params, p)
		if isSliceish(p.Type()) {
			w.vars[p] = taint{origin: "parameter " + p.Name(), pos: p.Pos(), root: p}
		}
	}
	w.walkBody(node.decl.Body)

	sum := &funcSummary{
		paramEscapes:    make([]bool, sig.Params().Len()),
		borrowedResults: make([]bool, sig.Results().Len()),
		invalidates:     col.invalidates,
	}
	for i, p := range col.params {
		sum.paramEscapes[i] = col.escaped[p]
	}
	for i := range sum.borrowedResults {
		sum.borrowedResults[i] = col.results[i]
	}
	return sum
}

func summariesEqual(a, b *funcSummary) bool {
	if a.invalidates != b.invalidates ||
		len(a.paramEscapes) != len(b.paramEscapes) ||
		len(a.borrowedResults) != len(b.borrowedResults) {
		return false
	}
	for i := range a.paramEscapes {
		if a.paramEscapes[i] != b.paramEscapes[i] {
			return false
		}
	}
	for i := range a.borrowedResults {
		if a.borrowedResults[i] != b.borrowedResults[i] {
			return false
		}
	}
	return true
}

// isSliceish reports whether t is a slice (or a named type whose
// underlying type is) - the value class the lifetime rules track.
func isSliceish(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
