package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded Go package: parsed syntax plus complete type
// information established by whole-program, dependency-ordered checking.
type Package struct {
	// Dir is the directory as given (possibly relative) for requested
	// packages, or the module-rooted directory for dependencies pulled in
	// for type information only.
	Dir string
	// Path is the import path when the directory sits inside a module,
	// otherwise the cleaned directory path.
	Path string
	// Name is the package clause name of the first file.
	Name string
	// Fset positions all Files. It is shared by every package of a Load.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Info holds the full type information (Types, Defs, Uses,
	// Selections, Implicits, Instances) for this package's syntax. The
	// map is shared program-wide, so cross-package objects resolve to the
	// real declarations, never stubs.
	Info *types.Info
	// Types is the type-checked package object.
	Types *types.Package
	// Requested reports whether the package was matched by the load
	// patterns (and should be analyzed) as opposed to being loaded only
	// as a dependency for type information.
	Requested bool

	// repoImports are the module-internal import paths of this package,
	// used for dependency ordering.
	repoImports []string
}

// Program is the result of a whole-program Load: the requested packages
// plus the module-internal dependency closure, all type-checked against
// each other in dependency order.
type Program struct {
	// Fset positions every file in the program.
	Fset *token.FileSet
	// Info is the program-wide type information, shared by every Package.
	Info *types.Info
	// Packages are the pattern-matched packages, sorted by directory.
	// Analyzers run over these.
	Packages []*Package
	// All is the full closure (requested + dependencies) in dependency
	// order: a package appears after everything it imports.
	All []*Package
	// Module is the module path ("" when loading outside a module).
	Module string
	// ModuleDir is the module root directory.
	ModuleDir string

	// byPath indexes All by import path.
	byPath map[string]*Package

	// built lazily by Run (guarded by once): the call graph and the
	// interprocedural dataflow summaries shared by the analyzers.
	factsOnce sync.Once
	callgraph *callGraph
	summaries *summaryTable
}

// PackageOf returns the loaded package with the given import path, or nil.
func (prog *Program) PackageOf(path string) *Package { return prog.byPath[path] }

// Load parses and type-checks the packages matched by patterns, plus
// every module-internal package they (transitively) import. Patterns
// follow the go tool's shape: a directory ("./internal/shmem"), or a
// directory with a /... suffix ("./...") meaning the directory and
// everything below it. Directories named testdata, and directories whose
// name starts with "." or "_", are never matched by /... (exactly like
// the go tool); naming such a directory explicitly loads it. Test files
// (_test.go) are always skipped. Directories containing no buildable Go
// files are skipped silently under /..., but naming one explicitly is an
// error.
//
// Unlike a permissive syntax loader, Load fails when any loaded package
// does not type-check: the analyzers depend on complete cross-package
// type information (Uses/Defs/Selections resolving to real objects), so
// a package that does not compile cannot be analyzed honestly.
func Load(patterns []string) (*Program, error) {
	dirs, explicit, err := expand(patterns)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset: token.NewFileSet(),
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Instances:  make(map[*ast.Ident]types.Instance),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
		byPath: make(map[string]*Package),
	}

	// Parse the requested directories.
	byAbs := make(map[string]*Package)
	var all []*Package
	for _, dir := range dirs {
		pkg, err := parseDir(prog, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			if explicit[dir] {
				return nil, fmt.Errorf("analysis: no Go files in %s", dir)
			}
			continue
		}
		pkg.Requested = true
		abs, _ := filepath.Abs(dir)
		byAbs[abs] = pkg
		all = append(all, pkg)
		prog.Packages = append(prog.Packages, pkg)
		if prog.Module == "" {
			prog.Module, prog.ModuleDir = moduleOf(dir)
		}
	}

	// Pull in the module-internal dependency closure.
	for i := 0; i < len(all); i++ { // all grows during the loop
		pkg := all[i]
		for _, imp := range packageImports(pkg) {
			if prog.Module == "" || !isUnder(imp, prog.Module) {
				continue
			}
			pkg.repoImports = append(pkg.repoImports, imp)
			rel := strings.TrimPrefix(strings.TrimPrefix(imp, prog.Module), "/")
			depDir := filepath.Join(prog.ModuleDir, filepath.FromSlash(rel))
			abs, _ := filepath.Abs(depDir)
			if byAbs[abs] != nil {
				continue
			}
			dep, err := parseDir(prog, depDir)
			if err != nil {
				return nil, fmt.Errorf("analysis: loading dependency %s: %w", imp, err)
			}
			if dep == nil {
				return nil, fmt.Errorf("analysis: dependency %s (%s) has no Go files", imp, depDir)
			}
			byAbs[abs] = dep
			all = append(all, dep)
		}
	}

	ordered, err := dependencyOrder(all)
	if err != nil {
		return nil, err
	}
	prog.All = ordered
	for _, p := range ordered {
		prog.byPath[p.Path] = p
	}

	if err := typeCheck(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// expand resolves patterns to a sorted, de-duplicated directory list.
// explicit marks directories that were named directly (not via /...).
func expand(patterns []string) (dirs []string, explicit map[string]bool, err error) {
	seen := make(map[string]bool)
	explicit = make(map[string]bool)
	add := func(dir string, isExplicit bool) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		if isExplicit {
			explicit[dir] = true
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Clean(rest)
			if rest == "" {
				root = "."
			}
			walkErr := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path, false)
				return nil
			})
			if walkErr != nil {
				return nil, nil, fmt.Errorf("analysis: expanding %s: %w", pat, walkErr)
			}
			continue
		}
		fi, statErr := os.Stat(pat)
		if statErr != nil {
			return nil, nil, fmt.Errorf("analysis: %w", statErr)
		}
		if !fi.IsDir() {
			return nil, nil, fmt.Errorf("analysis: %s is not a directory", pat)
		}
		add(pat, true)
	}
	sort.Strings(dirs)
	return dirs, explicit, nil
}

// parseDir parses one directory as a package into prog's shared FileSet.
// Returns (nil, nil) when the directory holds no non-test Go files.
func parseDir(prog *Program, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &Package{
		Dir:   dir,
		Path:  importPath(dir),
		Name:  files[0].Name.Name,
		Fset:  prog.Fset,
		Files: files,
		Info:  prog.Info,
	}, nil
}

// packageImports returns the de-duplicated import paths of pkg's files.
func packageImports(pkg *Package) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// isUnder reports whether the import path p is the module path mod or
// lies under it.
func isUnder(p, mod string) bool {
	return p == mod || strings.HasPrefix(p, mod+"/")
}

// dependencyOrder topologically sorts pkgs so that every package appears
// after all module-internal packages it imports.
func dependencyOrder(pkgs []*Package) ([]*Package, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	state := make(map[*Package]int) // 0 unvisited, 1 visiting, 2 done
	var out []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", p.Path)
		case 2:
			return nil
		}
		state[p] = 1
		for _, imp := range p.repoImports {
			if dep := byPath[imp]; dep != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = 2
		out = append(out, p)
		return nil
	}
	// Deterministic order: visit by import path.
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// typeCheck checks every package of prog in dependency order, feeding
// each check the already-checked module-internal packages, so every
// cross-package selector resolves to its real object.
func typeCheck(prog *Program) error {
	imp := &progImporter{prog: prog}
	var errs []error
	for _, pkg := range prog.All {
		var pkgErrs []error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				pkgErrs = append(pkgErrs, err)
			},
		}
		tpkg, _ := conf.Check(pkg.Path, prog.Fset, pkg.Files, prog.Info)
		pkg.Types = tpkg
		if len(pkgErrs) > 0 {
			// Report a bounded number of errors per package: the first
			// few identify the problem, the rest are usually cascade.
			const maxPerPkg = 5
			if len(pkgErrs) > maxPerPkg {
				pkgErrs = append(pkgErrs[:maxPerPkg],
					fmt.Errorf("%s: ... and %d more errors", pkg.Path, len(pkgErrs)-maxPerPkg))
			}
			errs = append(errs, pkgErrs...)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("analysis: type checking failed (the analyzers need complete type information):\n%w", errors.Join(errs...))
	}
	return nil
}

// The non-module (stdlib) importer is shared process-wide, not
// per-Load: importer instances cache the packages they produce, and two
// instances yield two distinct *types.Package objects for the same path
// — a "time.Duration is not time.Duration" identity clash when one Load
// imports time directly and a later Load's net/http pulls in its own.
// Export data does not change under us, so one instance (plus the cache
// fronting it, which also spares repeated export-data reads across the
// golden tests) is both correct and fast.
var (
	stdImportCache sync.Map // import path -> *types.Package
	stdImporterOne sync.Once
	stdImporter    types.Importer
	srcImporterOne sync.Once
	srcImporter    types.Importer
	srcImporterFst *token.FileSet
)

// progImporter resolves imports during the dependency-ordered check:
// module-internal paths come from the already-checked program packages,
// everything else from the toolchain's export data (with a from-source
// fallback so the loader keeps working without compiled artifacts).
type progImporter struct {
	prog *Program
}

func (imp *progImporter) Import(path string) (*types.Package, error) {
	if imp.prog.Module != "" && isUnder(path, imp.prog.Module) {
		if p := imp.prog.byPath[path]; p != nil && p.Types != nil {
			return p.Types, nil
		}
		return nil, fmt.Errorf("module-internal package %s was not loaded (dependency ordering bug?)", path)
	}
	if cached, ok := stdImportCache.Load(path); ok {
		return cached.(*types.Package), nil
	}
	stdImporterOne.Do(func() { stdImporter = importer.Default() })
	p, err := stdImporter.Import(path)
	if err != nil {
		// The source importer needs a FileSet; the process-wide instance
		// keeps its own so stdlib object identity stays consistent across
		// Loads (positions inside stdlib sources are never reported).
		srcImporterOne.Do(func() {
			srcImporterFst = token.NewFileSet()
			srcImporter = importer.ForCompiler(srcImporterFst, "source", nil)
		})
		var srcErr error
		p, srcErr = srcImporter.Import(path)
		if srcErr != nil {
			return nil, fmt.Errorf("importing %s: %v (source fallback: %v)", path, err, srcErr)
		}
	}
	stdImportCache.Store(path, p)
	return p, nil
}

// moduleOf locates the enclosing go.mod of dir and returns its module
// path and root directory ("", "" when dir is not inside a module).
func moduleOf(dir string) (modPath, modRoot string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", ""
	}
	for root := abs; ; {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			if mod := modulePath(string(data)); mod != "" {
				return mod, root
			}
		}
		parent := filepath.Dir(root)
		if parent == root {
			return "", ""
		}
		root = parent
	}
}

// importPath derives the package's import path by locating the enclosing
// go.mod. Falls back to the cleaned directory when no module is found.
func importPath(dir string) string {
	mod, root := moduleOf(dir)
	if mod == "" {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	if rel == "." {
		return mod
	}
	return mod + "/" + filepath.ToSlash(rel)
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
