package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded Go package: parsed syntax plus best-effort type
// information.
type Package struct {
	// Dir is the directory as given (possibly relative).
	Dir string
	// Path is the import path when the directory sits inside a module,
	// otherwise the cleaned directory path.
	Path string
	// Name is the package clause name of the first file.
	Name string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Info holds whatever type information the permissive check could
	// establish (identifier uses/defs; package-name resolution always
	// works, cross-package member resolution does not — see stubImporter).
	Info *types.Info
}

// Load parses the packages matched by patterns. Patterns follow the go
// tool's shape: a directory ("./internal/shmem"), or a directory with a
// /... suffix ("./...") meaning the directory and everything below it.
// Directories named testdata, and directories whose name starts with "."
// or "_", are never matched by /... (exactly like the go tool); naming
// such a directory explicitly loads it. Test files (_test.go) are always
// skipped. Directories containing no buildable Go files are skipped
// silently under /..., but naming one explicitly is an error.
func Load(patterns []string) ([]*Package, error) {
	dirs, explicit, err := expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			if explicit[dir] {
				return nil, fmt.Errorf("analysis: no Go files in %s", dir)
			}
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand resolves patterns to a sorted, de-duplicated directory list.
// explicit marks directories that were named directly (not via /...).
func expand(patterns []string) (dirs []string, explicit map[string]bool, err error) {
	seen := make(map[string]bool)
	explicit = make(map[string]bool)
	add := func(dir string, isExplicit bool) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		if isExplicit {
			explicit[dir] = true
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Clean(rest)
			if rest == "" {
				root = "."
			}
			walkErr := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path, false)
				return nil
			})
			if walkErr != nil {
				return nil, nil, fmt.Errorf("analysis: expanding %s: %w", pat, walkErr)
			}
			continue
		}
		fi, statErr := os.Stat(pat)
		if statErr != nil {
			return nil, nil, fmt.Errorf("analysis: %w", statErr)
		}
		if !fi.IsDir() {
			return nil, nil, fmt.Errorf("analysis: %s is not a directory", pat)
		}
		add(pat, true)
	}
	sort.Strings(dirs)
	return dirs, explicit, nil
}

// loadDir parses one directory as a package. Returns (nil, nil) when the
// directory holds no non-test Go files.
func loadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkg := &Package{
		Dir:   dir,
		Path:  importPath(dir),
		Name:  files[0].Name.Name,
		Fset:  fset,
		Files: files,
	}
	pkg.Info = typeCheck(pkg)
	return pkg, nil
}

// importPath derives the package's import path by locating the enclosing
// go.mod. Falls back to the cleaned directory when no module is found.
func importPath(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	for root := abs; ; {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			if mod := modulePath(string(data)); mod != "" {
				rel, err := filepath.Rel(root, abs)
				if err == nil {
					if rel == "." {
						return mod
					}
					return mod + "/" + filepath.ToSlash(rel)
				}
			}
		}
		parent := filepath.Dir(root)
		if parent == root {
			break
		}
		root = parent
	}
	return filepath.ToSlash(filepath.Clean(dir))
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// typeCheck runs go/types over the package in permissive mode: type
// errors are discarded and imports resolve to empty stub packages, so
// checking always "succeeds" offline and without compiled export data.
// The resulting Info reliably resolves package-name qualifiers (the
// `shmem` in shmem.AllocInt64Array) and local definitions, which is all
// the analyzers need beyond syntax.
func typeCheck(pkg *Package) *types.Info {
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer: stubImporter{},
		Error:    func(error) {}, // permissive: collect what resolves
	}
	// Check's error mirrors the ignored callback errors; Info is
	// populated for everything that did resolve either way.
	_, _ = conf.Check(pkg.Path, pkg.Fset, pkg.Files, info)
	return info
}

// stubImporter satisfies every import with an empty, complete package so
// that type checking never needs export data or network access. Member
// lookups on stubs fail (and are swallowed by the permissive Error
// callback), but the import's PkgName object still lands in Info.Uses,
// which is what qualifierPath relies on.
type stubImporter struct{}

func (stubImporter) Import(path string) (*types.Package, error) {
	if p, err := importer.Default().Import(path); err == nil {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	return p, nil
}
