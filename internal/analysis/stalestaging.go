package analysis

import (
	"go/ast"
	"go/types"
)

// StaleStaging flags NBI staging-pool buffers retained past the point
// the pool recycles them. The shmem RMA layer stages every PutNBI
// payload in a pooled []byte (getNBIBuf) that quiet()/Quiet/Barrier
// drain and recycle (DESIGN.md §8, staging-pool rule): code that keeps
// reading or writing such a buffer after releasing it (putNBIBuf) or
// after a quiet/barrier is writing into a buffer the pool has already
// handed to an unrelated Put — non-deterministic corruption that Open
// item 1's multi-process transport would turn into cross-process heap
// scribbles. The rule is scoped to packages whose import path ends in
// internal/shmem (the pool's API is unexported by design); the
// in-package names getNBIBuf/putNBIBuf, the pendingWrite staging record,
// and the quiet/Quiet/Barrier/Fence release points are its contract.
type StaleStaging struct{}

// Name implements Analyzer.
func (StaleStaging) Name() string { return "stalestaging" }

// Doc implements Analyzer.
func (StaleStaging) Doc() string {
	return "NBI staging-pool buffer (getNBIBuf result or pendingWrite.data) is used after putNBIBuf released it or after quiet/Barrier recycled the pool; the bytes now belong to another in-flight Put"
}

const staleStagingFix = "finish all writes to the staging buffer before releasing it or reaching a quiet/barrier; if the data must outlive the quiet, copy it out first"

// stagingReleasePoints are the in-package operations after which every
// outstanding staging buffer is recycled.
var stagingReleasePoints = nameSet([]string{"quiet", "Quiet", "Barrier", "Fence"})

// Run implements Analyzer.
func (a StaleStaging) Run(pass *Pass) {
	if !pathHasSuffix(pass.Pkg.Path, "internal/shmem") {
		return
	}
	pkgPath := pass.Pkg.Path
	spec := &taintSpec{
		describe: "NBI staging buffer",
		staleFix: staleStagingFix,
		// Staging buffers legitimately live in the pendingNBI field until
		// quiet drains them; only use-after-release is a violation.
		trackEscapes: false,
		sourceResults: func(fn *types.Func) []int {
			if isFunc(fn, pkgPath, "getNBIBuf") {
				return []int{0}
			}
			return nil
		},
		sourceExpr: func(info *types.Info, e ast.Expr) bool {
			sel, ok := e.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "data" {
				return false
			}
			tv, ok := info.Types[sel.X]
			if !ok || tv.Type == nil {
				return false
			}
			t := tv.Type
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			n, ok := t.(*types.Named)
			return ok && n.Obj().Pkg() != nil &&
				n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == "pendingWrite"
		},
		invalidates: func(fn *types.Func) string {
			if funcIn(fn, pkgPath, stagingReleasePoints) {
				return fn.Name() + " recycled the staging pool"
			}
			return ""
		},
		releaseArgs: func(fn *types.Func) []int {
			if isFunc(fn, pkgPath, "putNBIBuf") {
				return []int{0}
			}
			return nil
		},
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The pool's own plumbing — the release points and the drain
			// loop — manipulates recycled buffers by definition.
			if stagingReleasePoints[fd.Name.Name] ||
				fd.Name.Name == "getNBIBuf" || fd.Name.Name == "putNBIBuf" {
				continue
			}
			runLifetimeWalk(pass, spec, fd.Body)
		}
	}
}
