package analysis

import (
	"go/ast"
	"go/types"
)

// callGraph maps declared functions and methods (by their origin
// *types.Func) to their syntax, across every package of the program —
// requested and dependency alike — so the dataflow engine can follow a
// call from any analyzed package into the function it actually invokes.
//
// Resolution is static: direct calls to named functions and methods on
// concrete receivers. Calls through function values, struct fields, and
// interfaces stay unresolved; the analyzers treat unresolved calls
// optimistically (no escape, no progress) rather than drowning every
// finding in may-alias noise — the same trade TASKPROF makes in favor of
// pinpointed causes.
type callGraph struct {
	funcs map[*types.Func]*funcNode
}

// funcNode is one declared function or method.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// buildCallGraph indexes every function declaration in the program.
func buildCallGraph(prog *Program) *callGraph {
	cg := &callGraph{funcs: make(map[*types.Func]*funcNode)}
	for _, pkg := range prog.All {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := prog.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				cg.funcs[obj.Origin()] = &funcNode{obj: obj.Origin(), decl: fd, pkg: pkg}
			}
		}
	}
	return cg
}

// nodeOf returns the declaration node for a resolved callee, or nil for
// functions outside the loaded program (stdlib) or unresolved calls.
func (cg *callGraph) nodeOf(fn *types.Func) *funcNode {
	if fn == nil {
		return nil
	}
	return cg.funcs[fn.Origin()]
}
