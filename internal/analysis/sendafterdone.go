package analysis

import (
	"go/ast"
)

// SendAfterDone flags Send calls on a selector mailbox that has already
// been marked Done in the same straight-line flow. Done(mb) is the PE's
// promise that no more messages will enter mailbox mb; the runtime
// panics on a late Send, but only at run time, on the input that happens
// to reach that path — this rule rejects the pattern at build time.
//
// The analysis is a dominance approximation over statement order: a Done
// recorded at some block level applies to every later statement at that
// level (and inside them); a Done nested in a conditional does not leak
// out of it.
type SendAfterDone struct{}

// Name implements Analyzer.
func (SendAfterDone) Name() string { return "sendafterdone" }

// Doc implements Analyzer.
func (SendAfterDone) Doc() string {
	return "Selector.Send on a mailbox after Done/DoneAll on the same selector in the same flow; Done promises no further sends, and the runtime panics on violation"
}

const sendAfterDoneFix = "move the Send before Done, or split the protocol across mailboxes so each mailbox is Done exactly when its sends are finished"

// doneKey identifies a (selector, mailbox) pair; mailbox "" means every
// mailbox (DoneAll).
type doneKey struct {
	recv, mailbox string
}

// Run implements Analyzer.
func (a SendAfterDone) Run(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		funcBodies(file, true, func(ft *ast.FuncType, body *ast.BlockStmt) {
			a.walkBlock(pass, body.List, make(map[doneKey]bool))
		})
	}
}

// walkBlock processes statements in order. done is mutated as Done calls
// are seen; nested control flow gets a copy so its marks stay local.
func (a SendAfterDone) walkBlock(pass *Pass, stmts []ast.Stmt, done map[doneKey]bool) {
	for _, s := range stmts {
		// First flag Sends in this statement's own expressions (call
		// statements, conditions, assignments) against the current done
		// set. Nested blocks are not inspected here: walkBlock recurses
		// into them below with a copy of the state, so their Sends are
		// checked exactly once.
		for _, e := range levelExprs(s) {
			a.checkSends(pass, e, done)
		}
		// Then record definite Done calls: a statement-level call always
		// executes once flow reaches it.
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				a.recordDone(pass, call, done)
			}
		}
		// Recurse into nested blocks with a copy so conditional Dones
		// don't taint the remainder of this level. Sends inside were
		// already checked against this level's state above; the copy run
		// additionally catches Done->Send sequences local to the nested
		// block.
		for _, nested := range nestedBlocks(s) {
			a.walkBlock(pass, nested.List, copyDone(done))
		}
	}
}

// levelExprs returns the expressions evaluated when control reaches stmt
// itself, before any nested block runs.
func levelExprs(s ast.Stmt) []ast.Expr {
	var out []ast.Expr
	switch s := s.(type) {
	case *ast.ExprStmt:
		out = append(out, s.X)
	case *ast.AssignStmt:
		out = append(out, s.Rhs...)
	case *ast.ReturnStmt:
		out = append(out, s.Results...)
	case *ast.IfStmt:
		out = append(out, levelExprs(s.Init)...)
		out = append(out, s.Cond)
	case *ast.ForStmt:
		out = append(out, levelExprs(s.Init)...)
		if s.Cond != nil {
			out = append(out, s.Cond)
		}
	case *ast.RangeStmt:
		out = append(out, s.X)
	case *ast.SwitchStmt:
		out = append(out, levelExprs(s.Init)...)
		if s.Tag != nil {
			out = append(out, s.Tag)
		}
	case *ast.DeferStmt:
		out = append(out, s.Call)
	case *ast.GoStmt:
		out = append(out, s.Call)
	case *ast.SendStmt:
		out = append(out, s.Chan, s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
		}
	case *ast.LabeledStmt:
		out = append(out, levelExprs(s.Stmt)...)
	}
	return out
}

// checkSends reports Sends within expr that hit a done mailbox.
func (a SendAfterDone) checkSends(pass *Pass, expr ast.Expr, done map[doneKey]bool) {
	if len(done) == 0 || expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass.Pkg.Info, call); !isMethodOn(fn, pkgActor, "Selector", "Send") || len(call.Args) != 3 {
			return true
		}
		recv, _, ok := callee(call)
		if !ok || recv == nil {
			return true
		}
		recvKey := exprKey(recv)
		if recvKey == "" {
			return true
		}
		mb := litOrConstKey(call.Args[0])
		all := done[doneKey{recvKey, ""}]
		same := mb != "" && done[doneKey{recvKey, mb}]
		if all || same {
			label := mb
			if label == "" {
				label = "?"
			}
			pass.Report(call.Pos(), sendAfterDoneFix,
				"%s.Send on mailbox %s after %s.Done; Done promised no further sends on this mailbox (runtime panic)", recvKey, label, recvKey)
		}
		return true
	})
}

// recordDone marks Done/DoneAll statement-level calls.
func (a SendAfterDone) recordDone(pass *Pass, call *ast.CallExpr, done map[doneKey]bool) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || recvNamed(fn) == nil ||
		(!isMethodOn(fn, pkgActor, "Selector", "Done") && !isMethodOn(fn, pkgActor, "Selector", "DoneAll")) {
		return
	}
	recv, _, ok := callee(call)
	if !ok || recv == nil {
		return
	}
	recvKey := exprKey(recv)
	if recvKey == "" {
		return
	}
	switch fn.Name() {
	case "Done":
		if len(call.Args) != 1 {
			return
		}
		if mb := litOrConstKey(call.Args[0]); mb != "" {
			done[doneKey{recvKey, mb}] = true
		}
	case "DoneAll":
		if len(call.Args) == 0 {
			done[doneKey{recvKey, ""}] = true
		}
	}
}

// nestedBlocks returns the statement blocks directly nested in s.
func nestedBlocks(s ast.Stmt) []*ast.BlockStmt {
	var blocks []*ast.BlockStmt
	switch s := s.(type) {
	case *ast.BlockStmt:
		blocks = append(blocks, s)
	case *ast.IfStmt:
		blocks = append(blocks, s.Body)
		if s.Else != nil {
			blocks = append(blocks, nestedBlocks(s.Else)...)
		}
	case *ast.ForStmt:
		blocks = append(blocks, s.Body)
	case *ast.RangeStmt:
		blocks = append(blocks, s.Body)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			blocks = append(blocks, &ast.BlockStmt{List: c.(*ast.CaseClause).Body})
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			blocks = append(blocks, &ast.BlockStmt{List: c.(*ast.CaseClause).Body})
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			blocks = append(blocks, &ast.BlockStmt{List: c.(*ast.CommClause).Body})
		}
	case *ast.LabeledStmt:
		blocks = append(blocks, nestedBlocks(s.Stmt)...)
	}
	return blocks
}

func copyDone(done map[doneKey]bool) map[doneKey]bool {
	cp := make(map[doneKey]bool, len(done))
	for k, v := range done {
		cp[k] = v
	}
	return cp
}
