// Package analysis is actorvet's static-analysis framework: a small,
// stdlib-only (go/ast, go/parser, go/types) analogue of
// golang.org/x/tools/go/analysis, purpose-built to machine-check the
// FA-BSP/SPMD programming disciplines that this repository's runtime
// layers (shmem, conveyor, actor, trace) otherwise enforce only by
// convention — and whose violations the ActorProf paper can only show
// after the fact, as corrupted MAIN/PROC/COMM profiles or hung runs.
//
// The framework loads whole programs from go-style patterns (./...):
// every requested package plus its module-internal dependency closure is
// type-checked in dependency order against a shared types.Info, so
// analyzers see real cross-package objects in Uses/Defs/Selections —
// never stubs. On top of the loader sit a call graph, interprocedural
// dataflow summaries, and a per-function taint engine that the lifetime
// rules (escapingview, stalestaging) consume. Run collects
// position-tagged Diagnostics, honors //actorvet:ignore suppression
// directives (validating them, and warning when they suppress nothing),
// and the reporters render text, JSON, or SARIF. The shipped analyzers
// are listed by DefaultAnalyzers; each one's Doc explains the invariant
// and ties it to the paper's region semantics (see DESIGN.md §11).
package analysis

import (
	"fmt"
	"go/token"
)

// Severity classifies a diagnostic.
type Severity string

// Severity levels. Errors are invariant violations that deadlock or
// corrupt a run; warnings are discipline violations that degrade
// profiles or bypass safety rails.
const (
	SeverityError   Severity = "error"
	SeverityWarning Severity = "warning"
)

// Diagnostic is one finding: a rule violation at a source position.
type Diagnostic struct {
	// Rule is the analyzer's name (the stable rule ID).
	Rule string `json:"rule"`
	// Severity is error or warning.
	Severity Severity `json:"severity"`
	// File is the path as loaded (relative to the working directory
	// when the patterns were relative).
	File string `json:"file"`
	// Line and Col are 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message states the violation.
	Message string `json:"message"`
	// Fix, when non-empty, hints at the remedy.
	Fix string `json:"fix,omitempty"`
	// Edits, when non-empty, is a mechanical fix applied by -fix mode.
	// Excluded from JSON: reports describe findings, not patches.
	Edits []TextEdit `json:"-"`
}

// Position renders the file:line:col prefix.
func (d Diagnostic) Position() string {
	return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
}

// Analyzer checks one invariant over one package at a time.
type Analyzer interface {
	// Name is the stable rule ID (lowercase, no spaces).
	Name() string
	// Doc is a one-paragraph description of the invariant.
	Doc() string
	// Run inspects pass.Pkg and reports findings via pass.Report.
	Run(pass *Pass)
}

// Pass carries one (package, analyzer) execution.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// Prog is the whole program the package was loaded into: the full
	// dependency closure, shared type info, call graph, and
	// interprocedural summaries.
	Prog *Program

	analyzer Analyzer
	severity Severity
	sink     func(Diagnostic)
}

// Report records a finding at pos with a fix hint (may be empty).
func (p *Pass) Report(pos token.Pos, fix, format string, args ...any) {
	p.ReportWithEdits(pos, fix, nil, format, args...)
}

// ReportWithEdits records a finding carrying a mechanical fix.
func (p *Pass) ReportWithEdits(pos token.Pos, fix string, edits []TextEdit, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.sink(Diagnostic{
		Rule:     p.analyzer.Name(),
		Severity: p.severity,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
		Edits:    edits,
	})
}
