package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// Reporter renders a diagnostic list.
type Reporter interface {
	Report(w io.Writer, diags []Diagnostic) error
}

// TextReporter renders one finding per line in the familiar
// file:line:col: severity: message [rule] shape, with indented fix
// hints, followed by a summary count.
type TextReporter struct {
	// Verbose adds each finding's fix hint on a second line.
	Verbose bool
}

// Report implements Reporter.
func (r TextReporter) Report(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintf(w, "%s: %s: %s [%s]\n", d.Position(), d.Severity, d.Message, d.Rule); err != nil {
			return err
		}
		if r.Verbose && d.Fix != "" {
			if _, err := fmt.Fprintf(w, "\tfix: %s\n", d.Fix); err != nil {
				return err
			}
		}
	}
	if len(diags) > 0 {
		if _, err := fmt.Fprintf(w, "%d finding(s)\n", len(diags)); err != nil {
			return err
		}
	}
	return nil
}

// JSONReporter renders the diagnostics as a stable JSON document, for CI
// annotation tooling and editor integration.
type JSONReporter struct {
	// Indent pretty-prints when true.
	Indent bool
}

// jsonReport is the document shape: a count plus the findings, so that
// an empty run still emits a well-formed object rather than null.
type jsonReport struct {
	Count    int          `json:"count"`
	Findings []Diagnostic `json:"findings"`
}

// Report implements Reporter.
func (r JSONReporter) Report(w io.Writer, diags []Diagnostic) error {
	doc := jsonReport{Count: len(diags), Findings: diags}
	if doc.Findings == nil {
		doc.Findings = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	if r.Indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(doc)
}
