package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"actorprof/internal/actor"
	"actorprof/internal/shmem"
	"actorprof/internal/trace"
)

// DivergedCollective flags collective operations that are reachable only
// under rank-dependent control flow: the classic SPMD deadlock, where the
// ranks that skip the collective leave the others waiting forever at a
// barrier that can never complete. The collective entry points come from
// the runtime packages' own vet contracts (shmem.CollectiveMethods,
// actor.CollectiveFuncs, trace.CollectiveFuncs), so the rule tracks the
// API without a parallel list to maintain.
type DivergedCollective struct{}

// Name implements Analyzer.
func (DivergedCollective) Name() string { return "divergedcollective" }

// Doc implements Analyzer.
func (DivergedCollective) Doc() string {
	return "collective call (barrier, reduction, symmetric allocation, collector construction) reachable only under pe.Rank()-dependent conditionals or loops; diverged ranks deadlock the SPMD run"
}

const divergedFix = "hoist the collective out of the rank-dependent control flow so every PE executes it, or guard it with //actorvet:ignore and a justification"

// isCollectiveCall reports whether fn — a resolved callee — is a
// collective entry point, per the runtime packages' vet contracts:
// *PE collectives and Runtime.Finish as methods, plus the symmetric
// allocators and collector constructors as package-level functions.
func isCollectiveCall(fn *types.Func, shmemMethods, actorMethods map[string]bool) bool {
	switch {
	case funcIn(fn, pkgShmem, shmemMethods) && recvNamed(fn) != nil:
		return true
	case funcIn(fn, pkgActor, actorMethods) && recvNamed(fn) != nil:
		return true
	case funcIn(fn, pkgShmem, nameSet(shmem.CollectiveFuncs())) && recvNamed(fn) == nil:
		return true
	case funcIn(fn, pkgActor, nameSet(actor.CollectiveFuncs())) && recvNamed(fn) == nil:
		return true
	case funcIn(fn, pkgTrace, nameSet(trace.CollectiveFuncs())) && recvNamed(fn) == nil:
		return true
	}
	return false
}

// Run implements Analyzer.
func (a DivergedCollective) Run(pass *Pass) {
	shmemMethods := nameSet(shmem.CollectiveMethods())
	actorMethods := nameSet(actor.CollectiveMethods())
	for _, file := range pass.Pkg.Files {
		funcBodies(file, false, func(ft *ast.FuncType, body *ast.BlockStmt) {
			w := &divergenceWalker{
				pass:         pass,
				shmemMethods: shmemMethods,
				actorMethods: actorMethods,
			}
			w.tainted = w.rankTaint(body)
			w.walkBlock(body, false)
		})
	}
}

// divergenceWalker walks one function body (treating function literals as
// executing inline at their lexical position) tracking whether control
// flow has diverged on rank.
type divergenceWalker struct {
	pass         *Pass
	shmemMethods map[string]bool
	actorMethods map[string]bool
	tainted      map[string]bool
}

func (w *divergenceWalker) walkBlock(b *ast.BlockStmt, div bool) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		w.walkStmt(s, div)
	}
}

func (w *divergenceWalker) walkStmt(s ast.Stmt, div bool) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.scan(s.Init, div)
		}
		w.scan(s.Cond, div)
		branchDiv := div || w.rankDep(s.Cond)
		w.walkBlock(s.Body, branchDiv)
		if s.Else != nil {
			w.walkStmt(s.Else, branchDiv)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.scan(s.Init, div)
		}
		tagDep := false
		if s.Tag != nil {
			w.scan(s.Tag, div)
			tagDep = w.rankDep(s.Tag)
		}
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CaseClause)
			clauseDiv := div || tagDep
			for _, e := range cc.List {
				w.scan(e, div)
				if w.rankDep(e) {
					clauseDiv = true
				}
			}
			for _, cs := range cc.Body {
				w.walkStmt(cs, clauseDiv)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.scan(s.Init, div)
		}
		bodyDiv := div
		if s.Cond != nil {
			w.scan(s.Cond, div)
			bodyDiv = bodyDiv || w.rankDep(s.Cond)
		}
		if s.Post != nil {
			w.scan(s.Post, div)
		}
		w.walkBlock(s.Body, bodyDiv)
	case *ast.RangeStmt:
		w.scan(s.X, div)
		w.walkBlock(s.Body, div || w.rankDep(s.X))
	case *ast.BlockStmt:
		w.walkBlock(s, div)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, div)
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Type switches never switch on rank (an int); selects hold no
		// conditions. Walk their bodies at the current divergence.
		ast.Inspect(s, func(n ast.Node) bool {
			if inner, ok := n.(ast.Stmt); ok && inner != s {
				if _, isCase := inner.(*ast.CaseClause); !isCase {
					if _, isComm := inner.(*ast.CommClause); !isComm {
						w.walkStmt(inner, div)
						return false
					}
				}
			}
			return true
		})
	default:
		w.scan(s, div)
	}
}

// scan inspects a non-control subtree: it reports collective calls made
// at the current divergence level and walks function-literal bodies
// inline (they execute, or are overwhelmingly likely to execute, at this
// point in the control flow — rt.Finish(func(){...}) being the canonical
// shape).
func (w *divergenceWalker) scan(n ast.Node, div bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			w.walkBlock(node.Body, div)
			return false
		case *ast.CallExpr:
			if div {
				w.checkCall(node)
			}
		}
		return true
	})
}

// checkCall reports node when it is a collective entry point.
func (w *divergenceWalker) checkCall(call *ast.CallExpr) {
	fn := calleeFunc(w.pass.Pkg.Info, call)
	if fn == nil || !isCollectiveCall(fn, w.shmemMethods, w.actorMethods) {
		return
	}
	label := fn.Name()
	if recv, _, ok := callee(call); ok && recv != nil {
		if key := exprKey(recv); key != "" {
			label = key + "." + fn.Name()
		}
	}
	w.report(call.Pos(), label)
}

func (w *divergenceWalker) report(pos token.Pos, label string) {
	w.pass.Report(pos, divergedFix,
		"collective %s is only reachable under rank-dependent control flow; ranks that skip it strand the others in the barrier (SPMD deadlock)", label)
}

// rankDep reports whether expr depends on the executing PE's identity: it
// contains a Rank()/Node() call or an identifier tainted by one.
func (w *divergenceWalker) rankDep(expr ast.Expr) bool {
	dep := false
	selNames := selectorSels(expr)
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if w.isRankSource(n) {
				dep = true
			}
		case *ast.Ident:
			if !selNames[n] && w.tainted[n.Name] {
				dep = true
			}
		}
		return !dep
	})
	return dep
}

// isRankSource reports whether call is shmem's PE.Rank() or PE.Node() —
// the two accessors that differ across PEs.
func (w *divergenceWalker) isRankSource(call *ast.CallExpr) bool {
	fn := calleeFunc(w.pass.Pkg.Info, call)
	return isMethodOn(fn, pkgShmem, "PE", "Rank") || isMethodOn(fn, pkgShmem, "PE", "Node")
}

// rankTaint computes the set of identifier names assigned (directly or
// transitively) from Rank()/Node() anywhere in body. The fixpoint loop is
// bounded: each pass can only add names, and chains longer than the bound
// are vanishingly rare in real code. The conventional-name seeds (rank,
// mype, …) are deliberate heuristics for rank values that cross function
// boundaries — they taint conditions, they do not match API calls.
func (w *divergenceWalker) rankTaint(body *ast.BlockStmt) map[string]bool {
	tainted := make(map[string]bool)
	// Seed with conventional parameter/variable names for rank values
	// that cross function boundaries, where dataflow can't see the source.
	for _, seed := range []string{"rank", "myrank", "mype", "myPE", "myRank"} {
		tainted[seed] = true
	}
	depOn := func(e ast.Expr) bool {
		dep := false
		selNames := selectorSels(e)
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if w.isRankSource(n) {
					dep = true
				}
			case *ast.Ident:
				if !selNames[n] && tainted[n.Name] {
					dep = true
				}
			}
			return !dep
		})
		return dep
	}
	for pass := 0; pass < 4; pass++ {
		grew := false
		mark := func(id *ast.Ident) {
			if id.Name != "_" && !tainted[id.Name] {
				tainted[id.Name] = true
				grew = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				anyDep := false
				for _, rhs := range n.Rhs {
					if depOn(rhs) {
						anyDep = true
						break
					}
				}
				if anyDep {
					for _, lhs := range n.Lhs {
						if id, ok := unparen(lhs).(*ast.Ident); ok {
							mark(id)
						}
					}
				}
			case *ast.ValueSpec:
				anyDep := false
				for _, v := range n.Values {
					if depOn(v) {
						anyDep = true
						break
					}
				}
				if anyDep {
					for _, id := range n.Names {
						mark(id)
					}
				}
			case *ast.RangeStmt:
				if depOn(n.X) {
					if id, ok := unparen(n.Key).(*ast.Ident); ok && n.Key != nil {
						mark(id)
					}
					if n.Value != nil {
						if id, ok := unparen(n.Value).(*ast.Ident); ok {
							mark(id)
						}
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	return tainted
}

// selectorSels collects the Sel identifiers of every selector expression
// in n, so taint matching can skip field/method names that merely share a
// tainted variable's name.
func selectorSels(n ast.Node) map[*ast.Ident]bool {
	sels := make(map[*ast.Ident]bool)
	ast.Inspect(n, func(node ast.Node) bool {
		if sel, ok := node.(*ast.SelectorExpr); ok {
			sels[sel.Sel] = true
		}
		return true
	})
	return sels
}
