package analysis

import (
	"sort"
)

// Run executes every analyzer over the program's requested packages,
// drops suppressed diagnostics, validates the suppression directives
// themselves (baddirective, staleignore), and returns the findings
// sorted by file, line, column, rule.
func Run(prog *Program, analyzers []Analyzer) []Diagnostic {
	knownRules := make(map[string]bool)
	for _, a := range DefaultAnalyzers() {
		knownRules[a.Name()] = true
	}
	knownRules[ruleBadDirective] = true
	knownRules[ruleStaleIgnore] = true
	activeRules := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		activeRules[a.Name()] = true
	}
	fullSuite := len(activeRules) >= len(DefaultAnalyzers())

	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		idx := buildIgnoreIndex(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Pkg:      pkg,
				Prog:     prog,
				analyzer: a,
				severity: severityOf(a),
				sink: func(d Diagnostic) {
					if !idx.suppressed(d) {
						diags = append(diags, d)
					}
				},
			}
			a.Run(pass)
		}
		// Directive hygiene. These bypass suppression deliberately: a
		// stale wildcard directive would otherwise suppress its own
		// staleness warning.
		sink := func(d Diagnostic) { diags = append(diags, d) }
		idx.validate(knownRules, sink)
		idx.reportStale(activeRules, fullSuite, sink)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}

// severityLevels maps rule IDs to non-default severities; everything
// else is an error.
var severityLevels = map[string]Severity{
	"rawoffset":      SeverityWarning,
	"unpairedregion": SeverityWarning,
	ruleBadDirective: SeverityError,
	ruleStaleIgnore:  SeverityWarning,
}

func severityOf(a Analyzer) Severity {
	if s, ok := severityLevels[a.Name()]; ok {
		return s
	}
	return SeverityError
}
