package analysis

import (
	"sort"
)

// Run executes every analyzer over every package, drops suppressed
// diagnostics, and returns the rest sorted by file, line, column, rule.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		idx := buildIgnoreIndex(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Pkg:      pkg,
				analyzer: a,
				severity: severityOf(a),
				sink: func(d Diagnostic) {
					if !idx.suppressed(d) {
						diags = append(diags, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}

// severityLevels maps rule IDs to non-default severities; everything
// else is an error.
var severityLevels = map[string]Severity{
	"rawoffset":      SeverityWarning,
	"unpairedregion": SeverityWarning,
}

func severityOf(a Analyzer) Severity {
	if s, ok := severityLevels[a.Name()]; ok {
		return s
	}
	return SeverityError
}
