package analysis

import (
	"encoding/json"
	"io"
	"sort"
)

// SARIFReporter renders the diagnostics as a SARIF 2.1.0 document, the
// interchange format GitHub code scanning ingests to surface findings as
// PR annotations. One run, one driver (actorvet), one rule entry per
// analyzer that actually fired, results referencing rules by ID.
type SARIFReporter struct{}

// The subset of SARIF 2.1.0 this reporter emits. Field order within the
// structs is the serialization order, so the output is byte-stable for
// golden tests.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifLevel maps actorvet severities onto SARIF's level vocabulary.
func sarifLevel(s Severity) string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// Report implements Reporter.
func (SARIFReporter) Report(w io.Writer, diags []Diagnostic) error {
	ruleDocs := make(map[string]string)
	for _, a := range DefaultAnalyzers() {
		ruleDocs[a.Name()] = a.Doc()
	}
	ruleDocs[ruleBadDirective] = "//actorvet:ignore directive names a rule that does not exist"
	ruleDocs[ruleStaleIgnore] = "//actorvet:ignore directive suppresses nothing"

	seen := make(map[string]bool)
	var rules []sarifRule
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		if !seen[d.Rule] {
			seen[d.Rule] = true
			rules = append(rules, sarifRule{
				ID:               d.Rule,
				ShortDescription: sarifMessage{Text: ruleDocs[d.Rule]},
			})
		}
		msg := d.Message
		if d.Fix != "" {
			msg += " (fix: " + d.Fix + ")"
		}
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   sarifLevel(d.Severity),
			Message: sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	doc := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "actorvet",
				InformationURI: "https://github.com/actorprof/actorprof",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	if doc.Runs[0].Tool.Driver.Rules == nil {
		doc.Runs[0].Tool.Driver.Rules = []sarifRule{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
