package analysis

import (
	"go/ast"
	"go/types"
)

// Import paths of the runtime packages whose API contracts the analyzers
// enforce. With the whole-program loader every fixture and every repo
// package resolves these to the same real packages, so matching is by
// exact object identity (package path + name), never by syntactic
// heuristics.
const (
	pkgShmem    = "actorprof/internal/shmem"
	pkgActor    = "actorprof/internal/actor"
	pkgTrace    = "actorprof/internal/trace"
	pkgPAPI     = "actorprof/internal/papi"
	pkgConveyor = "actorprof/internal/conveyor"
)

// calleeFunc resolves a call expression to its static callee: a declared
// function or method object. Calls of function values (fields, locals,
// interface methods without a concrete receiver) return nil — the
// analyzers treat those optimistically. Generic instantiations resolve
// to the origin (uninstantiated) object so summaries and contract lists
// match regardless of type arguments.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			// Method or field selection. Only method calls resolve.
			if f, ok := sel.Obj().(*types.Func); ok {
				return f.Origin()
			}
			return nil
		}
		// Package-qualified function: shmem.AllocInt64Array.
		obj = info.Uses[fn.Sel]
	case *ast.IndexExpr: // generic instantiation: NewSelector[int64](...)
		return calleeFunc(info, &ast.CallExpr{Fun: fn.X})
	case *ast.IndexListExpr:
		return calleeFunc(info, &ast.CallExpr{Fun: fn.X})
	}
	if f, ok := obj.(*types.Func); ok {
		return f.Origin()
	}
	return nil
}

// isFunc reports whether fn is the function or method pkgPath.name.
func isFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// funcIn reports whether fn is declared in pkgPath and its name is in
// names.
func funcIn(fn *types.Func, pkgPath string, names map[string]bool) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && names[fn.Name()]
}

// nameSet builds a membership set from a name list.
func nameSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

// recvNamed returns the receiver's named type (through pointers and
// instantiations) of a method object, or nil for plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Origin()
	}
	return nil
}

// isMethodOn reports whether fn is a method named name whose receiver is
// the named type pkgPath.typeName.
func isMethodOn(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	n := recvNamed(fn)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == typeName
}

// usedObject resolves an identifier expression to the object it uses,
// through parentheses. Returns nil for non-identifiers.
func usedObject(info *types.Info, e ast.Expr) types.Object {
	if id, ok := unparen(e).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	return nil
}

// isPackageLevel reports whether obj is a package-scoped variable.
func isPackageLevel(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Parent() == obj.Pkg().Scope()
}
