package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"actorprof/internal/actor"
	"actorprof/internal/conveyor"
)

// EscapingView flags borrowed conveyor views that outlive their borrow.
// conveyor.Pull returns a slice into the pull ring and PushSlot a slice
// into the push buffer; both are valid only until the next conveyor
// progress (DESIGN.md §8), when the transport recycles the backing
// arrays. A view stored to a field, global, channel, slice element, or
// goroutine — or simply read after progress — observes bytes from a
// different message: the zero-allocation hot path's one sharp edge,
// which corrupts MAIN/PROC/COMM attribution silently. The analysis is
// interprocedural: passing a view to a function whose summary stores its
// parameter is an escape too, and calling a function that transitively
// makes progress invalidates live views.
type EscapingView struct{}

// Name implements Analyzer.
func (EscapingView) Name() string { return "escapingview" }

// Doc implements Analyzer.
func (EscapingView) Doc() string {
	return "borrowed conveyor view (Pull/PushSlot/PullRun result) or ProcessBatch scratch slice escapes its borrow — stored to a field, global, channel, or goroutine, or used after conveyor/actor progress recycled its backing buffer; copy the elements first (append([]T(nil), v...))"
}

const escapeViewFix = "copy before retaining: v = append([]T(nil), v...)"
const staleViewFix = "copy the bytes you still need before the progress call"

// borrowSpec parameterizes the dataflow engine for borrowed conveyor
// views. It is also the spec the whole-program summaries are computed
// under (see Program facts).
func borrowSpec() *taintSpec {
	borrowed := conveyor.BorrowedViewMethods()
	convProgress := nameSet(conveyor.ProgressMethods())
	actProgress := nameSet(actor.ProgressMethods())
	batch := actor.BatchHandlerMethods()
	return &taintSpec{
		describe:     "borrowed conveyor view",
		escapeFix:    escapeViewFix,
		staleFix:     staleViewFix,
		copyFixable:  true,
		trackEscapes: true,
		sourceResults: func(fn *types.Func) []int {
			if n := recvNamed(fn); n != nil && n.Obj().Pkg() != nil &&
				n.Obj().Pkg().Path() == pkgConveyor && n.Obj().Name() == "Conveyor" {
				return borrowed[fn.Name()]
			}
			return nil
		},
		invalidates: func(fn *types.Func) string {
			n := recvNamed(fn)
			if n == nil || n.Obj().Pkg() == nil {
				return ""
			}
			switch {
			case n.Obj().Pkg().Path() == pkgConveyor && n.Obj().Name() == "Conveyor" && convProgress[fn.Name()]:
				return "conveyor progress (" + fn.Name() + ")"
			case n.Obj().Pkg().Path() == pkgActor && n.Obj().Name() == "Selector" && actProgress[fn.Name()]:
				return "actor progress (" + fn.Name() + ")"
			case n.Obj().Pkg().Path() == pkgActor && n.Obj().Name() == "Runtime" && fn.Name() == "Finish":
				return "Runtime.Finish (drains all conveyors)"
			}
			return ""
		},
		releaseArgs: func(fn *types.Func) []int { return nil },
		batchHandlerArg: func(fn *types.Func) int {
			if n := recvNamed(fn); n != nil && n.Obj().Pkg() != nil &&
				n.Obj().Pkg().Path() == pkgActor && n.Obj().Name() == "Selector" {
				if idx, ok := batch[fn.Name()]; ok {
					return idx
				}
			}
			return -1
		},
	}
}

// Run implements Analyzer.
func (a EscapingView) Run(pass *Pass) {
	_, summaries := pass.Prog.facts()
	spec := borrowSpec()
	spec.summaries = summaries
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runLifetimeWalk(pass, spec, fd.Body)
		}
	}
}

// runLifetimeWalk wires the dataflow engine to a Pass: reports become
// diagnostics, and fixable escapes carry copy-insertion edits.
func runLifetimeWalk(pass *Pass, spec *taintSpec, body *ast.BlockStmt) {
	var pending []TextEdit
	w := newTaintWalker(pass.Pkg.Info, spec, nil)
	w.edits = func(pos, end token.Pos, typ types.Type) {
		// The copy must be the same slice type as the escaping value:
		// []byte for conveyor views, the message slice type for batch
		// scratch. Unknown types conservatively fall back to []byte,
		// matching the historical fix.
		elem := "byte"
		if typ != nil {
			if s, ok := typ.Underlying().(*types.Slice); ok {
				elem = types.TypeString(s.Elem(), types.RelativeTo(pass.Pkg.Types))
			}
		}
		file := pass.Pkg.Fset.Position(pos)
		pending = []TextEdit{
			{File: file.Filename, Offset: file.Offset, End: file.Offset, NewText: "append([]" + elem + "(nil), "},
			{File: file.Filename, Offset: pass.Pkg.Fset.Position(end).Offset, End: pass.Pkg.Fset.Position(end).Offset, NewText: "...)"},
		}
	}
	w.report = func(pos token.Pos, fix, format string, args ...any) {
		pass.ReportWithEdits(pos, fix, pending, format, args...)
		pending = nil
	}
	w.walkBody(body)
}

// facts lazily builds the whole-program analysis facts shared by every
// pass: the call graph and the interprocedural borrow summaries.
func (prog *Program) facts() (*callGraph, *summaryTable) {
	prog.factsOnce.Do(func() {
		prog.callgraph = buildCallGraph(prog)
		prog.summaries = computeSummaries(prog, prog.callgraph, borrowSpec())
	})
	return prog.callgraph, prog.summaries
}
