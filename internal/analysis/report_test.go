package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Rule: "divergedcollective", Severity: SeverityError,
			File: "pkg/a.go", Line: 13, Col: 3,
			Message: "collective pe.Barrier is only reachable under rank-dependent control flow",
			Fix:     "hoist the collective",
		},
		{
			Rule: "rawoffset", Severity: SeverityWarning,
			File: "pkg/b.go", Line: 7, Col: 17,
			Message: "raw symmetric-heap offset arithmetic",
		},
	}
}

// TestTextReporterGolden pins the text format byte-for-byte.
func TestTextReporterGolden(t *testing.T) {
	var b strings.Builder
	if err := (TextReporter{Verbose: true}).Report(&b, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	want := "pkg/a.go:13:3: error: collective pe.Barrier is only reachable under rank-dependent control flow [divergedcollective]\n" +
		"\tfix: hoist the collective\n" +
		"pkg/b.go:7:17: warning: raw symmetric-heap offset arithmetic [rawoffset]\n" +
		"2 finding(s)\n"
	if b.String() != want {
		t.Errorf("text report:\n%s\nwant:\n%s", b.String(), want)
	}

	b.Reset()
	if err := (TextReporter{}).Report(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Errorf("empty run should print nothing, got %q", b.String())
	}
}

// TestJSONReporterGolden pins the JSON document shape byte-for-byte.
func TestJSONReporterGolden(t *testing.T) {
	var b strings.Builder
	if err := (JSONReporter{}).Report(&b, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	want := `{"count":2,"findings":[` +
		`{"rule":"divergedcollective","severity":"error","file":"pkg/a.go","line":13,"col":3,` +
		`"message":"collective pe.Barrier is only reachable under rank-dependent control flow","fix":"hoist the collective"},` +
		`{"rule":"rawoffset","severity":"warning","file":"pkg/b.go","line":7,"col":17,` +
		`"message":"raw symmetric-heap offset arithmetic"}]}` + "\n"
	if b.String() != want {
		t.Errorf("json report:\n%s\nwant:\n%s", b.String(), want)
	}

	b.Reset()
	if err := (JSONReporter{}).Report(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != `{"count":0,"findings":[]}`+"\n" {
		t.Errorf("empty json report = %q", b.String())
	}
}

// TestJSONReporterRoundTripsFixture runs the suite over a fixture and
// checks the JSON output decodes back to the same diagnostics.
func TestJSONReporterRoundTripsFixture(t *testing.T) {
	pkgs, err := Load([]string{filepath.Join("testdata", "src", "rawoffset")})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, DefaultAnalyzers())
	var b strings.Builder
	if err := (JSONReporter{Indent: true}).Report(&b, diags); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Count    int          `json:"count"`
		Findings []Diagnostic `json:"findings"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("reporter emitted invalid JSON: %v\n%s", err, b.String())
	}
	if doc.Count != len(diags) || len(doc.Findings) != len(diags) {
		t.Fatalf("round trip count = %d/%d, want %d", doc.Count, len(doc.Findings), len(diags))
	}
	for i := range diags {
		if doc.Findings[i] != diags[i] {
			t.Errorf("finding %d round-tripped to %+v, want %+v", i, doc.Findings[i], diags[i])
		}
	}
}
