package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Rule: "divergedcollective", Severity: SeverityError,
			File: "pkg/a.go", Line: 13, Col: 3,
			Message: "collective pe.Barrier is only reachable under rank-dependent control flow",
			Fix:     "hoist the collective",
		},
		{
			Rule: "rawoffset", Severity: SeverityWarning,
			File: "pkg/b.go", Line: 7, Col: 17,
			Message: "raw symmetric-heap offset arithmetic",
		},
	}
}

// TestTextReporterGolden pins the text format byte-for-byte.
func TestTextReporterGolden(t *testing.T) {
	var b strings.Builder
	if err := (TextReporter{Verbose: true}).Report(&b, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	want := "pkg/a.go:13:3: error: collective pe.Barrier is only reachable under rank-dependent control flow [divergedcollective]\n" +
		"\tfix: hoist the collective\n" +
		"pkg/b.go:7:17: warning: raw symmetric-heap offset arithmetic [rawoffset]\n" +
		"2 finding(s)\n"
	if b.String() != want {
		t.Errorf("text report:\n%s\nwant:\n%s", b.String(), want)
	}

	b.Reset()
	if err := (TextReporter{}).Report(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Errorf("empty run should print nothing, got %q", b.String())
	}
}

// TestJSONReporterGolden pins the JSON document shape byte-for-byte.
func TestJSONReporterGolden(t *testing.T) {
	var b strings.Builder
	if err := (JSONReporter{}).Report(&b, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	want := `{"count":2,"findings":[` +
		`{"rule":"divergedcollective","severity":"error","file":"pkg/a.go","line":13,"col":3,` +
		`"message":"collective pe.Barrier is only reachable under rank-dependent control flow","fix":"hoist the collective"},` +
		`{"rule":"rawoffset","severity":"warning","file":"pkg/b.go","line":7,"col":17,` +
		`"message":"raw symmetric-heap offset arithmetic"}]}` + "\n"
	if b.String() != want {
		t.Errorf("json report:\n%s\nwant:\n%s", b.String(), want)
	}

	b.Reset()
	if err := (JSONReporter{}).Report(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != `{"count":0,"findings":[]}`+"\n" {
		t.Errorf("empty json report = %q", b.String())
	}
}

// TestJSONReporterRoundTripsFixture runs the suite over a fixture and
// checks the JSON output decodes back to the same diagnostics.
func TestJSONReporterRoundTripsFixture(t *testing.T) {
	pkgs, err := Load([]string{filepath.Join("testdata", "src", "rawoffset")})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, DefaultAnalyzers())
	var b strings.Builder
	if err := (JSONReporter{Indent: true}).Report(&b, diags); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Count    int          `json:"count"`
		Findings []Diagnostic `json:"findings"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("reporter emitted invalid JSON: %v\n%s", err, b.String())
	}
	if doc.Count != len(diags) || len(doc.Findings) != len(diags) {
		t.Fatalf("round trip count = %d/%d, want %d", doc.Count, len(doc.Findings), len(diags))
	}
	for i := range diags {
		got, want := doc.Findings[i], diags[i]
		// Edits are a fix payload, deliberately excluded from reports.
		want.Edits = nil
		if !reflect.DeepEqual(got, want) {
			t.Errorf("finding %d round-tripped to %+v, want %+v", i, got, want)
		}
	}
}

// TestSARIFReporterGolden pins the SARIF 2.1.0 document byte-for-byte
// against testdata/golden/sample.sarif — the format GitHub code scanning
// ingests, so any drift is a CI-integration break.
func TestSARIFReporterGolden(t *testing.T) {
	var b strings.Builder
	if err := (SARIFReporter{}).Report(&b, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden", "sample.sarif")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if b.String() != string(want) {
		t.Errorf("sarif output drifted from %s:\n%s", golden, b.String())
	}

	// Structural invariants, independent of the golden bytes.
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("sarif output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version = %q, runs = %d; want 2.1.0 with one run", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "actorvet" || len(run.Tool.Driver.Rules) != 2 || len(run.Results) != 2 {
		t.Fatalf("driver = %q with %d rules, %d results; want actorvet with 2 rules, 2 results",
			run.Tool.Driver.Name, len(run.Tool.Driver.Rules), len(run.Results))
	}
	if run.Results[0].Level != "error" || run.Results[1].Level != "warning" {
		t.Errorf("levels = %s, %s; want error, warning", run.Results[0].Level, run.Results[1].Level)
	}

	// The empty document is still a well-formed run (code scanning
	// rejects null results).
	b.Reset()
	if err := (SARIFReporter{}).Report(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"results": []`) {
		t.Errorf("empty sarif run should carry an empty results array:\n%s", b.String())
	}
}
