package analysis

import (
	"fmt"
	"go/ast"
	"go/token"

	"actorprof/internal/shmem"
)

// RawOffset flags raw symmetric-heap offset arithmetic: RMA calls whose
// byte-offset argument is computed inline from bare numeric literals
// (off+8*i and friends) instead of going through the typed Int64Array
// accessors. Hand-rolled offsets bypass Int64Array's bounds checks,
// silently alias neighboring symmetric objects on every PE, and —
// because ensure() grows heaps on demand — turn an off-by-one into heap
// growth instead of a crash. The RMA entry points and their
// offset-parameter positions come from shmem.RawOffsetMethods.
//
// Arithmetic over named constants (base + wordBytes*i) passes clean: the
// name expresses the layout's intent, and it is exactly what -fix
// rewrites bare literals into. The shmem package itself (the typed
// layer's implementation) is exempt; other deliberate low-level code
// (the conveyor transport owns its slot layout) carries
// //actorvet:ignore-file directives.
type RawOffset struct{}

// Name implements Analyzer.
func (RawOffset) Name() string { return "rawoffset" }

// Doc implements Analyzer.
func (RawOffset) Doc() string {
	return "raw symmetric-heap offset arithmetic (bare numeric literals) passed to an RMA call; bypasses the typed Int64Array bounds checks"
}

const rawOffsetFix = "use shmem.AllocInt64Array and its Get/Set/PutRemote/GetRemote/AddRemote/WaitUntil accessors, or name the scale factors (-fix rewrites literals to named constants)"

// Run implements Analyzer.
func (a RawOffset) Run(pass *Pass) {
	if pathHasSuffix(pass.Pkg.Path, "internal/shmem") {
		return // the typed layer's own implementation
	}
	methods := shmem.RawOffsetMethods()
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgShmem {
				return true
			}
			argIdx, isRMA := methods[fn.Name()]
			if !isRMA || argIdx >= len(call.Args) {
				return true
			}
			offset := call.Args[argIdx]
			lits := offsetLiterals(offset)
			if len(lits) == 0 {
				return true
			}
			label := fn.Name()
			if recv, _, ok := callee(call); ok && recv != nil {
				if key := exprKey(recv); key != "" {
					label = key + "." + fn.Name()
				}
			}
			pass.ReportWithEdits(offset.Pos(), rawOffsetFix, a.constEdits(pass, file, lits),
				"raw symmetric-heap offset arithmetic in %s bypasses the typed Int64Array bounds checks", label)
			return true
		})
	}
}

// offsetLiterals returns the bare integer literals of an inline offset
// computation: e must contain an arithmetic binary expression, and the
// returned literals are its hand-rolled scale factors. A bare
// identifier, named-constant arithmetic (base + wordBytes*i), field, or
// call result (a.Offset()) yields none and passes clean.
func offsetLiterals(e ast.Expr) []*ast.BasicLit {
	arithmetic := false
	var lits []*ast.BasicLit
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
				token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
				arithmetic = true
			}
		case *ast.BasicLit:
			if n.Kind == token.INT {
				lits = append(lits, n)
			}
		}
		return true
	})
	if !arithmetic {
		return nil
	}
	return lits
}

// constEdits builds the -fix rewrite: each bare literal becomes a named
// constant, declared once after the file's imports (unless the package
// already declares the name).
func (a RawOffset) constEdits(pass *Pass, file *ast.File, lits []*ast.BasicLit) []TextEdit {
	var edits []TextEdit
	insertAt := pass.Pkg.Fset.Position(constInsertionPoint(file)).Offset
	fname := pass.Pkg.Fset.Position(file.Pos()).Filename
	for _, lit := range lits {
		name := scaleConstName(lit.Value)
		start := pass.Pkg.Fset.Position(lit.Pos()).Offset
		end := pass.Pkg.Fset.Position(lit.End()).Offset
		edits = append(edits, TextEdit{File: fname, Offset: start, End: end, NewText: name})
		if pass.Pkg.Types != nil && pass.Pkg.Types.Scope().Lookup(name) != nil {
			continue // the package already names this scale
		}
		edits = append(edits, TextEdit{
			File: fname, Offset: insertAt, End: insertAt,
			NewText: fmt.Sprintf("\n\nconst %s = %s // named by actorvet -fix; document the layout this scales", name, lit.Value),
		})
	}
	return edits
}

// scaleConstName names the constant for a literal scale factor: 8 (the
// symmetric heap's word size) becomes wordBytes, anything else offScaleN.
func scaleConstName(value string) string {
	if value == "8" {
		return "wordBytes"
	}
	return "offScale" + value
}

// constInsertionPoint returns where a const declaration belongs: after
// the import declaration, or after the package clause when there is none.
func constInsertionPoint(file *ast.File) token.Pos {
	pos := file.Name.End()
	for _, d := range file.Decls {
		if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			pos = gd.End()
		}
	}
	return pos
}
