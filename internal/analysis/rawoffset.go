package analysis

import (
	"go/ast"
	"go/token"

	"actorprof/internal/shmem"
)

// RawOffset flags raw symmetric-heap offset arithmetic: RMA calls whose
// byte-offset argument is computed inline (off+8*i and friends) instead
// of going through the typed Int64Array accessors. Hand-rolled offsets
// bypass Int64Array's bounds checks, silently alias neighboring
// symmetric objects on every PE, and — because ensure() grows heaps on
// demand — turn an off-by-one into heap growth instead of a crash. The
// RMA entry points and their offset-parameter positions come from
// shmem.RawOffsetMethods.
//
// The shmem package itself (the typed layer's implementation) is exempt;
// other deliberate low-level code (the conveyor transport owns its slot
// layout) carries //actorvet:ignore-file directives.
type RawOffset struct{}

// Name implements Analyzer.
func (RawOffset) Name() string { return "rawoffset" }

// Doc implements Analyzer.
func (RawOffset) Doc() string {
	return "raw symmetric-heap offset arithmetic passed to an RMA call; bypasses the typed Int64Array bounds checks"
}

const rawOffsetFix = "use shmem.AllocInt64Array and its Get/Set/PutRemote/GetRemote/AddRemote/WaitUntil accessors, which bounds-check every element index"

// Run implements Analyzer.
func (a RawOffset) Run(pass *Pass) {
	if pathHasSuffix(pass.Pkg.Path, "internal/shmem") {
		return // the typed layer's own implementation
	}
	methods := shmem.RawOffsetMethods()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := callee(call)
			if !ok || recv == nil {
				return true
			}
			argIdx, isRMA := methods[name]
			if !isRMA || argIdx >= len(call.Args) {
				return true
			}
			if qualifierPath(pass.Pkg, file, recv) != "" {
				return true // package-qualified function, not a PE method
			}
			offset := call.Args[argIdx]
			if !isOffsetArithmetic(offset) {
				return true
			}
			label := name
			if key := exprKey(recv); key != "" {
				label = key + "." + name
			}
			pass.Report(offset.Pos(), rawOffsetFix,
				"raw symmetric-heap offset arithmetic in %s bypasses the typed Int64Array bounds checks", label)
			return true
		})
	}
}

// isOffsetArithmetic reports whether e computes a byte offset inline: it
// contains an arithmetic binary expression. A bare identifier, literal,
// field, or call result (a.Offset()) passes clean.
func isOffsetArithmetic(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if bin, ok := n.(*ast.BinaryExpr); ok {
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
				token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
				found = true
			}
		}
		return !found
	})
	return found
}
