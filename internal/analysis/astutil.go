package analysis

import (
	"go/ast"
	"strings"
)

// callee splits a call into its selector parts: for pe.Barrier() it
// returns (pe expression, "Barrier", true); for a bare f() it returns
// (nil, "f", true); for anything unnameable (calls of function values
// returned by calls, conversions, etc.) ok is false.
func callee(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	switch fn := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fn.X, fn.Sel.Name, true
	case *ast.Ident:
		return nil, fn.Name, true
	case *ast.IndexExpr: // generic instantiation: NewSelector[int64](...)
		if sel, isSel := unparen(fn.X).(*ast.SelectorExpr); isSel {
			return sel.X, sel.Sel.Name, true
		}
		if id, isIdent := unparen(fn.X).(*ast.Ident); isIdent {
			return nil, id.Name, true
		}
	}
	return nil, "", false
}

// pathHasSuffix reports whether an import path is pkg or ends in /pkg —
// "actorprof/internal/shmem" matches suffix "internal/shmem", and a
// fixture that imports plain "shmem" matches suffix "shmem".
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// exprKey renders a receiver expression to a stable string key — pe,
// rt.pc, s.convs — for grouping calls by receiver. Unrenderable shapes
// (calls, index expressions with computed indices) return "".
func exprKey(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprKey(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return ""
}

// litOrConstKey renders a mailbox-index expression to a comparable key:
// integer literals by value ("0"), named constants/variables by name
// ("mbDart"), anything computed as "".
func litOrConstKey(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.BasicLit:
		return e.Value
	case *ast.Ident:
		return e.Name
	}
	return ""
}

// funcBodies yields every function body in the file along with the
// enclosing function's type: declarations and, when walkLits is true,
// function literals that are not already nested inside another yielded
// body. Analyzers that treat literals as inline (executing at their
// lexical position) should walk them from within the enclosing body
// instead and pass walkLits=false here.
func funcBodies(f *ast.File, walkLits bool, visit func(ft *ast.FuncType, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Type, fd.Body)
	}
	if !walkLits {
		return
	}
	for _, decl := range f.Decls {
		ast.Inspect(decl, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				visit(fl.Type, fl.Body)
			}
			return true
		})
	}
}

// unparen strips parentheses from an expression (ast.Unparen arrived in
// Go 1.23; this repo's language floor is 1.22).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
