package analysis

import (
	"path/filepath"
	"testing"
)

// loc is an expected finding position within a fixture's bad.go.
type loc struct{ line, col int }

// analyzerGolden maps each rule to the exact findings its fixture must
// produce — rule IDs and positions are part of the contract (README
// documents the directive placement relative to them).
var analyzerGolden = map[string][]loc{
	"divergedcollective": {{13, 3}, {21, 12}, {28, 10}, {36, 14}, {43, 3}},
	"blockinghandler":    {{11, 3}, {12, 3}, {23, 2}, {28, 3}},
	"sendafterdone":      {{11, 2}, {16, 2}, {21, 2}, {27, 3}},
	"unpairedregion":     {{12, 2}, {24, 2}, {41, 9}, {46, 2}, {47, 6}},
	"rawoffset":          {{7, 17}, {8, 23}, {9, 21}, {10, 32}},
}

func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := Load([]string{filepath.Join("testdata", "src", name)})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs
}

// TestAnalyzerGolden runs each analyzer alone over its known-bad fixture
// and asserts the exact rule IDs and positions.
func TestAnalyzerGolden(t *testing.T) {
	for rule, want := range analyzerGolden {
		t.Run(rule, func(t *testing.T) {
			a := AnalyzerByName(rule)
			if a == nil {
				t.Fatalf("no analyzer named %s", rule)
			}
			pkgs := loadFixture(t, rule)
			diags := Run(pkgs, []Analyzer{a})
			wantFile := filepath.Join("testdata", "src", rule, "bad.go")
			if len(diags) != len(want) {
				t.Fatalf("got %d findings, want %d: %+v", len(diags), len(want), diags)
			}
			for i, d := range diags {
				if d.Rule != rule {
					t.Errorf("finding %d: rule = %s, want %s", i, d.Rule, rule)
				}
				if d.File != wantFile {
					t.Errorf("finding %d: file = %s, want %s", i, d.File, wantFile)
				}
				if d.Line != want[i].line || d.Col != want[i].col {
					t.Errorf("finding %d: at %d:%d, want %d:%d (%s)",
						i, d.Line, d.Col, want[i].line, want[i].col, d.Message)
				}
				if d.Message == "" || d.Fix == "" {
					t.Errorf("finding %d: empty message or fix hint: %+v", i, d)
				}
			}
		})
	}
}

// TestFullSuiteOnFixtures guards against cross-rule noise: the complete
// suite over each bad fixture must report exactly the fixture's own
// rule's findings and nothing else.
func TestFullSuiteOnFixtures(t *testing.T) {
	for rule, want := range analyzerGolden {
		t.Run(rule, func(t *testing.T) {
			diags := Run(loadFixture(t, rule), DefaultAnalyzers())
			if len(diags) != len(want) {
				t.Fatalf("full suite: got %d findings, want %d: %+v", len(diags), len(want), diags)
			}
			for _, d := range diags {
				if d.Rule != rule {
					t.Errorf("full suite: unexpected rule %s at %s", d.Rule, d.Position())
				}
			}
		})
	}
}

// TestCleanFixture asserts zero findings on the well-behaved program.
func TestCleanFixture(t *testing.T) {
	if diags := Run(loadFixture(t, "clean"), DefaultAnalyzers()); len(diags) != 0 {
		t.Fatalf("clean fixture produced findings: %+v", diags)
	}
}

// TestIgnoreDirectives asserts the three suppression forms work and a
// mismatched rule name does not over-suppress.
func TestIgnoreDirectives(t *testing.T) {
	diags := Run(loadFixture(t, "ignored"), DefaultAnalyzers())
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly the unsuppressed one: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "divergedcollective" || d.Line != 27 || d.Col != 3 {
		t.Fatalf("surviving finding = %s at %d:%d, want divergedcollective at 27:3", d.Rule, d.Line, d.Col)
	}
}

// TestSeverities pins the severity split: deadlock rules are errors,
// discipline rules are warnings.
func TestSeverities(t *testing.T) {
	want := map[string]Severity{
		"divergedcollective": SeverityError,
		"blockinghandler":    SeverityError,
		"sendafterdone":      SeverityError,
		"unpairedregion":     SeverityWarning,
		"rawoffset":          SeverityWarning,
	}
	for _, a := range DefaultAnalyzers() {
		if got := severityOf(a); got != want[a.Name()] {
			t.Errorf("%s: severity %s, want %s", a.Name(), got, want[a.Name()])
		}
	}
}

// TestLoadPatterns covers the loader's go-tool pattern semantics.
func TestLoadPatterns(t *testing.T) {
	// ./... from this package skips testdata, finding only the package
	// itself.
	pkgs, err := Load([]string{"./..."})
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Name != "analysis" {
		t.Fatalf("Load ./... = %d packages (first %q), want just analysis", len(pkgs), pkgs[0].Name)
	}
	if pkgs[0].Path != "actorprof/internal/analysis" {
		t.Errorf("import path = %q, want actorprof/internal/analysis", pkgs[0].Path)
	}

	// An explicit testdata subtree loads all fixtures.
	pkgs, err = Load([]string{filepath.Join("testdata", "src") + "/..."})
	if err != nil {
		t.Fatalf("Load testdata/src/...: %v", err)
	}
	if len(pkgs) != len(analyzerGolden)+2 { // five bad + clean + ignored
		t.Fatalf("got %d fixture packages, want %d", len(pkgs), len(analyzerGolden)+2)
	}

	// Naming a Go-free directory explicitly is an error.
	if _, err := Load([]string{filepath.Join("testdata", "src")}); err == nil {
		t.Fatal("Load of a directory without Go files should fail")
	}
}
