package analysis

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// loc is an expected finding position within a fixture's bad.go.
type loc struct{ line, col int }

// analyzerGolden maps each rule to the exact findings its fixture must
// produce — rule IDs and positions are part of the contract (README
// documents the directive placement relative to them).
var analyzerGolden = map[string][]loc{
	"divergedcollective": {{13, 3}, {21, 12}, {28, 10}, {36, 14}, {43, 3}},
	"blockinghandler":    {{12, 3}, {13, 3}, {24, 2}, {29, 3}},
	"sendafterdone":      {{11, 2}, {16, 2}, {21, 2}, {27, 3}},
	"unpairedregion":     {{12, 2}, {24, 2}, {41, 9}, {46, 2}, {47, 6}},
	"rawoffset":          {{7, 17}, {8, 23}, {9, 21}, {10, 32}},
	"escapingview":       {{18, 2}, {23, 3}, {29, 10}, {39, 7}, {49, 9}, {58, 9}, {65, 9}, {77, 9}, {90, 3}, {96, 3}, {102, 12}, {109, 8}, {116, 10}},
	"sharedhandlerstate": {{21, 4}, {22, 4}, {34, 2}},
	"stalestaging":       {{8, 9}, {15, 2}, {22, 9}},
}

// fixtureDir returns the fixture directory for a rule. stalestaging is
// path-scoped to packages ending in internal/shmem, so its fixture nests.
func fixtureDir(rule string) string {
	if rule == "stalestaging" {
		return filepath.Join("stalestaging", "internal", "shmem")
	}
	return rule
}

func loadFixture(t *testing.T, dir string) *Program {
	t.Helper()
	prog, err := Load([]string{filepath.Join("testdata", "src", dir)})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(prog.Packages) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", dir, len(prog.Packages))
	}
	return prog
}

// TestAnalyzerGolden runs each analyzer alone over its known-bad fixture
// and asserts the exact rule IDs and positions.
func TestAnalyzerGolden(t *testing.T) {
	for rule, want := range analyzerGolden {
		t.Run(rule, func(t *testing.T) {
			a := AnalyzerByName(rule)
			if a == nil {
				t.Fatalf("no analyzer named %s", rule)
			}
			prog := loadFixture(t, fixtureDir(rule))
			diags := Run(prog, []Analyzer{a})
			wantFile := filepath.Join("testdata", "src", fixtureDir(rule), "bad.go")
			if len(diags) != len(want) {
				t.Fatalf("got %d findings, want %d: %+v", len(diags), len(want), diags)
			}
			for i, d := range diags {
				if d.Rule != rule {
					t.Errorf("finding %d: rule = %s, want %s", i, d.Rule, rule)
				}
				if d.File != wantFile {
					t.Errorf("finding %d: file = %s, want %s", i, d.File, wantFile)
				}
				if d.Line != want[i].line || d.Col != want[i].col {
					t.Errorf("finding %d: at %d:%d, want %d:%d (%s)",
						i, d.Line, d.Col, want[i].line, want[i].col, d.Message)
				}
				if d.Message == "" || d.Fix == "" {
					t.Errorf("finding %d: empty message or fix hint: %+v", i, d)
				}
			}
		})
	}
}

// TestFullSuiteOnFixtures guards against cross-rule noise: the complete
// suite over each bad fixture must report exactly the fixture's own
// rule's findings and nothing else.
func TestFullSuiteOnFixtures(t *testing.T) {
	for rule, want := range analyzerGolden {
		t.Run(rule, func(t *testing.T) {
			diags := Run(loadFixture(t, fixtureDir(rule)), DefaultAnalyzers())
			if len(diags) != len(want) {
				t.Fatalf("full suite: got %d findings, want %d: %+v", len(diags), len(want), diags)
			}
			for _, d := range diags {
				if d.Rule != rule {
					t.Errorf("full suite: unexpected rule %s at %s", d.Rule, d.Position())
				}
			}
		})
	}
}

// TestCleanFixture asserts zero findings on the well-behaved program.
func TestCleanFixture(t *testing.T) {
	if diags := Run(loadFixture(t, "clean"), DefaultAnalyzers()); len(diags) != 0 {
		t.Fatalf("clean fixture produced findings: %+v", diags)
	}
}

// TestIgnoreDirectives asserts the three suppression forms work, a
// mismatched rule name does not over-suppress, and that same mismatched
// directive — which therefore suppressed nothing — is itself reported
// stale.
func TestIgnoreDirectives(t *testing.T) {
	diags := Run(loadFixture(t, "ignored"), DefaultAnalyzers())
	want := []struct {
		rule string
		at   loc
	}{
		{"divergedcollective", loc{27, 3}},
		{"staleignore", loc{27, 16}},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d findings, want %d: %+v", len(diags), len(want), diags)
	}
	for i, d := range diags {
		if d.Rule != want[i].rule || d.Line != want[i].at.line || d.Col != want[i].at.col {
			t.Errorf("finding %d = %s at %d:%d, want %s at %d:%d",
				i, d.Rule, d.Line, d.Col, want[i].rule, want[i].at.line, want[i].at.col)
		}
	}
}

// TestDirectiveEdgeCases pins the directive checker's behavior: a
// directive above a multi-line statement covers its whole extent, a
// directive above a block suppresses findings inside it, an unknown rule
// name is a loud baddirective error (and suppresses nothing), and
// directives that suppress nothing are staleignore warnings.
func TestDirectiveEdgeCases(t *testing.T) {
	diags := Run(loadFixture(t, "directives"), DefaultAnalyzers())
	want := []struct {
		rule string
		at   loc
		sev  Severity
	}{
		{"divergedcollective", loc{23, 3}, SeverityError}, // unknown-rule directive must not suppress
		{"baddirective", loc{23, 16}, SeverityError},
		{"staleignore", loc{28, 25}, SeverityWarning},
		{"staleignore", loc{32, 13}, SeverityWarning},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d findings, want %d: %+v", len(diags), len(want), diags)
	}
	for i, d := range diags {
		if d.Rule != want[i].rule || d.Line != want[i].at.line || d.Col != want[i].at.col || d.Severity != want[i].sev {
			t.Errorf("finding %d = %s(%s) at %d:%d, want %s(%s) at %d:%d",
				i, d.Rule, d.Severity, d.Line, d.Col, want[i].rule, want[i].sev, want[i].at.line, want[i].at.col)
		}
	}
}

// TestStaleIgnoreNotJudgedUnderFilter asserts a -rules style filtered
// run does not falsely call directives for inactive rules stale.
func TestStaleIgnoreNotJudgedUnderFilter(t *testing.T) {
	prog := loadFixture(t, "directives")
	diags := Run(prog, []Analyzer{AnalyzerByName("divergedcollective")})
	for _, d := range diags {
		if d.Rule == "staleignore" {
			t.Errorf("filtered run judged a directive stale: %s at %s", d.Message, d.Position())
		}
	}
}

// TestSeverities pins the severity split: rules whose violations
// deadlock or corrupt data are errors, discipline rules are warnings.
func TestSeverities(t *testing.T) {
	want := map[string]Severity{
		"divergedcollective": SeverityError,
		"blockinghandler":    SeverityError,
		"sendafterdone":      SeverityError,
		"escapingview":       SeverityError,
		"stalestaging":       SeverityError,
		"sharedhandlerstate": SeverityError,
		"unpairedregion":     SeverityWarning,
		"rawoffset":          SeverityWarning,
	}
	if len(DefaultAnalyzers()) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(DefaultAnalyzers()), len(want))
	}
	for _, a := range DefaultAnalyzers() {
		if got := severityOf(a); got != want[a.Name()] {
			t.Errorf("%s: severity %s, want %s", a.Name(), got, want[a.Name()])
		}
	}
	if severityLevels[ruleBadDirective] != SeverityError {
		t.Errorf("baddirective severity = %s, want error", severityLevels[ruleBadDirective])
	}
	if severityLevels[ruleStaleIgnore] != SeverityWarning {
		t.Errorf("staleignore severity = %s, want warning", severityLevels[ruleStaleIgnore])
	}
}

// TestLoadPatterns covers the loader's go-tool pattern semantics.
func TestLoadPatterns(t *testing.T) {
	// ./... from this package skips testdata, finding only the package
	// itself as requested; its module-internal imports load as
	// dependencies.
	prog, err := Load([]string{"./..."})
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(prog.Packages) != 1 || prog.Packages[0].Name != "analysis" {
		t.Fatalf("Load ./... = %d requested packages (first %q), want just analysis",
			len(prog.Packages), prog.Packages[0].Name)
	}
	if prog.Packages[0].Path != "actorprof/internal/analysis" {
		t.Errorf("import path = %q, want actorprof/internal/analysis", prog.Packages[0].Path)
	}
	if len(prog.All) <= len(prog.Packages) {
		t.Errorf("dependency closure did not grow: %d packages in All", len(prog.All))
	}

	// An explicit testdata subtree loads all fixtures (stalestaging
	// contributes its nested internal/shmem package; directives, clean,
	// and ignored ride along).
	prog, err = Load([]string{filepath.Join("testdata", "src") + "/..."})
	if err != nil {
		t.Fatalf("Load testdata/src/...: %v", err)
	}
	if want := len(analyzerGolden) + 3; len(prog.Packages) != want {
		t.Fatalf("got %d fixture packages, want %d", len(prog.Packages), want)
	}

	// Naming a Go-free directory explicitly is an error.
	if _, err := Load([]string{filepath.Join("testdata", "src")}); err == nil {
		t.Fatal("Load of a directory without Go files should fail")
	}
}

// TestLoaderCrossPackageTypeInfo asserts the loader produces real,
// complete cross-package type information: fixture selectors resolve to
// objects of the actual runtime packages, never stubs.
func TestLoaderCrossPackageTypeInfo(t *testing.T) {
	prog := loadFixture(t, "blockinghandler")
	shmemPkg := prog.PackageOf("actorprof/internal/shmem")
	if shmemPkg == nil {
		t.Fatal("dependency actorprof/internal/shmem was not loaded")
	}
	if shmemPkg.Types == nil || !shmemPkg.Types.Complete() {
		t.Fatal("shmem dependency is not a completely type-checked package")
	}
	if shmemPkg.Types.Scope().Lookup("PE") == nil {
		t.Fatal("shmem.PE not found in the dependency's scope")
	}
	// Every method selection in the fixture must resolve to a *types.Func
	// with a real defining package.
	resolved := 0
	for _, sel := range prog.Packages[0].Info.Selections {
		if sel.Obj() != nil && sel.Obj().Pkg() != nil {
			resolved++
		}
	}
	if resolved == 0 {
		t.Fatal("no resolved selections in fixture type info")
	}
}

// TestLoadRejectsBrokenPackage asserts the loader is strict: a package
// that does not type-check is an error, not a silently half-analyzed
// package.
func TestLoadRejectsBrokenPackage(t *testing.T) {
	dir, err := os.MkdirTemp("testdata", "broken-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	src := "package broken\n\nfunc f() { undefinedSymbol() }\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load([]string{dir}); err == nil {
		t.Fatal("Load of a non-type-checking package should fail")
	}
}

// TestWholeRepoAnalysisBudget runs the complete suite over the whole
// repository and asserts (a) the repo is actorvet-clean and (b) the
// whole-program analysis fits the 10-second budget the CI gate enforces.
func TestWholeRepoAnalysisBudget(t *testing.T) {
	start := time.Now()
	prog, err := Load([]string{filepath.Join("..", "..") + "/..."})
	if err != nil {
		t.Fatalf("loading whole repo: %v", err)
	}
	diags := Run(prog, DefaultAnalyzers())
	elapsed := time.Since(start)
	for _, d := range diags {
		t.Errorf("repo is not actorvet-clean: %s: %s [%s]", d.Position(), d.Message, d.Rule)
	}
	if elapsed > 10*time.Second {
		t.Errorf("whole-repo analysis took %v, budget is 10s", elapsed)
	}
	t.Logf("whole-repo analysis: %d packages in %v", len(prog.Packages), elapsed)
}
