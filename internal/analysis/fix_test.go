package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyFixtureTo copies every .go file of src into a fresh directory
// under testdata (inside the module, so actorprof/... imports resolve)
// and returns it. The copy is removed when the test ends.
func copyFixtureTo(t *testing.T, src, prefix string) string {
	t.Helper()
	dir, err := os.MkdirTemp("testdata", prefix+"-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runRule loads dir and runs the single named analyzer.
func runRule(t *testing.T, dir, rule string) []Diagnostic {
	t.Helper()
	prog, err := Load([]string{dir})
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return Run(prog, []Analyzer{AnalyzerByName(rule)})
}

// TestFixRoundTripRawOffset applies rawoffset's named-constant rewrite
// to a copy of the fixture and asserts the result re-vets clean: the
// rewrite (bare literal -> named constant) removes exactly the property
// the rule fires on.
func TestFixRoundTripRawOffset(t *testing.T) {
	dir := copyFixtureTo(t, filepath.Join("testdata", "src", "rawoffset"), "fixtmp-rawoffset")
	diags := runRule(t, dir, "rawoffset")
	if len(diags) != 4 {
		t.Fatalf("pre-fix: got %d findings, want 4", len(diags))
	}
	fixed, err := ApplyFixes(diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(fixed) != 1 {
		t.Fatalf("fixed %d files, want 1: %v", len(fixed), fixed)
	}
	after := runRule(t, dir, "rawoffset")
	if len(after) != 0 {
		t.Errorf("post-fix: %d findings remain: %+v", len(after), after)
	}
	patched, err := os.ReadFile(filepath.Join(dir, "bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"const wordBytes = 8", "wordBytes*i", "i<<offScale3"} {
		if !strings.Contains(string(patched), want) {
			t.Errorf("patched source missing %q:\n%s", want, patched)
		}
	}
}

// TestFixRoundTripEscapingView applies escapingview's copy insertion
// (append([]byte(nil), v...)) to a fixture whose findings are all
// mechanically fixable, and asserts the result re-vets clean.
func TestFixRoundTripEscapingView(t *testing.T) {
	dir := copyFixtureTo(t, filepath.Join("testdata", "fix", "escapingview"), "fixtmp-escview")
	diags := runRule(t, dir, "escapingview")
	if len(diags) != 5 {
		t.Fatalf("pre-fix: got %d findings, want 5: %+v", len(diags), diags)
	}
	for _, d := range diags {
		if len(d.Edits) == 0 {
			t.Fatalf("finding at %s carries no edits", d.Position())
		}
	}
	if _, err := ApplyFixes(diags); err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	after := runRule(t, dir, "escapingview")
	if len(after) != 0 {
		t.Errorf("post-fix: %d findings remain: %+v", len(after), after)
	}
	patched, err := os.ReadFile(filepath.Join(dir, "bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"box.last = append([]byte(nil), item...)",
		"lastMsg = append([]byte(nil), item...)",
		"out <- append([]byte(nil), slot...)",
		"stash(append([]byte(nil), item...))",
		"storedKeys = append([]int64(nil), msgs...)",
	} {
		if !strings.Contains(string(patched), want) {
			t.Errorf("patched source missing %q:\n%s", want, patched)
		}
	}
}

// TestApplyEditsOverlap asserts conflicting edits abort rather than
// corrupt the file.
func TestApplyEditsOverlap(t *testing.T) {
	src := []byte("hello world")
	if _, err := applyEdits(src, []TextEdit{
		{Offset: 0, End: 5, NewText: "HELLO"},
		{Offset: 3, End: 8, NewText: "XXX"},
	}); err == nil {
		t.Fatal("overlapping edits should error")
	}
	// Same-offset insertions do not conflict.
	out, err := applyEdits(src, []TextEdit{
		{Offset: 5, End: 5, NewText: ","},
		{Offset: 5, End: 5, NewText: "!"},
	})
	if err != nil {
		t.Fatalf("same-offset insertions: %v", err)
	}
	if string(out) != "hello,! world" && string(out) != "hello!, world" {
		t.Errorf("insertions applied as %q", out)
	}
}

// TestDedupeEdits asserts identical edits collapse (two findings both
// inserting the same const declaration must insert it once).
func TestDedupeEdits(t *testing.T) {
	e := TextEdit{File: "f.go", Offset: 10, End: 10, NewText: "const x = 1"}
	got := dedupeEdits([]TextEdit{e, e, e})
	if len(got) != 1 {
		t.Fatalf("deduped to %d edits, want 1", len(got))
	}
}
