// Triangle: the paper's Section IV case study in one program.
//
// Runs distributed triangle counting over an R-MAT graph twice - under
// the 1D Cyclic and the 1D Range distribution - with full ActorProf
// tracing, then prints the comparisons the paper draws: the logical
// heatmaps (Figure 3 - note the (L) shape under Range), the quartile
// violins (Figure 5), and the overall breakdowns (Figure 12), plus the
// headline imbalance factors. Trace files for both runs are written
// under ./triangle_traces for the actorprof visualizer.
//
// Run:
//
//	go run ./examples/triangle [-scale 11]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"actorprof/internal/core"
	"actorprof/internal/trace"
)

func main() {
	scale := flag.Int("scale", 11, "R-MAT scale")
	flag.Parse()
	if err := run(*scale, "triangle_traces", os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(scale int, traceDir string, out io.Writer) error {
	var reports []*core.TriangleReport
	for _, dist := range []core.DistKind{core.DistCyclic, core.DistRange} {
		exp := core.TriangleExperiment{
			Scale: scale, EdgeFactor: 16, Seed: 42,
			NumPEs: 16, PEsPerNode: 16,
			Dist: dist,
		}
		if len(reports) > 0 {
			exp.Graph = reports[0].Graph // share the input graph
		}
		rep, err := core.RunTriangle(exp)
		if err != nil {
			return err
		}
		if !rep.Validated() {
			return fmt.Errorf("%s: validation failed (%d vs %d)", dist, rep.Triangles, rep.Expected)
		}
		reports = append(reports, rep)

		dir := filepath.Join(traceDir, string(dist))
		if err := rep.Set.WriteFiles(dir); err != nil {
			return err
		}
	}

	cy, rg := reports[0], reports[1]
	fmt.Fprintf(out, "graph: %d vertices, %d edges, %d triangles (validated on both runs)\n\n",
		cy.Graph.NumVertices(), cy.Graph.NumEdges(), cy.Triangles)

	for _, rep := range reports {
		title := fmt.Sprintf("Logical trace heatmap - %s", rep.DistName)
		if err := core.LogicalHeatmap(rep.Set, title).RenderText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	for _, rep := range reports {
		title := fmt.Sprintf("Quartile violin - %s", rep.DistName)
		if err := core.LogicalViolin(rep.Set, title).RenderText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	for _, rep := range reports {
		title := fmt.Sprintf("Overall breakdown - %s", rep.DistName)
		if err := core.OverallStacked(rep.Set, true, title).RenderText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	// The paper's headline comparisons.
	cyM, rgM := cy.Set.LogicalMatrix(), rg.Set.LogicalMatrix()
	fmt.Fprintln(out, "case-study observations:")
	fmt.Fprintf(out, "  max sends:  cyclic %d vs range %d (%.1fx)\n",
		maxOf(cyM.SendTotals()), maxOf(rgM.SendTotals()),
		ratio(maxOf(cyM.SendTotals()), maxOf(rgM.SendTotals())))
	fmt.Fprintf(out, "  max recvs:  cyclic %d vs range %d (%.1fx)\n",
		maxOf(cyM.RecvTotals()), maxOf(rgM.RecvTotals()),
		ratio(maxOf(cyM.RecvTotals()), maxOf(rgM.RecvTotals())))
	cyT, rgT := maxTotal(cy.Set), maxTotal(rg.Set)
	fmt.Fprintf(out, "  total time: cyclic %d vs range %d cycles -> range is %.1fx faster\n",
		cyT, rgT, float64(cyT)/float64(rgT))
	fmt.Fprintf(out, "\ntrace files in %s/{cyclic,range} (render with cmd/actorprof)\n", traceDir)
	return nil
}

func maxOf(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func maxTotal(s *trace.Set) int64 {
	var m int64
	for _, r := range s.Overall {
		if r.TTotal > m {
			m = r.TTotal
		}
	}
	return m
}
