package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTriangleSmoke runs the Section IV case study at a tiny scale,
// writing trace files into a temp dir.
func TestTriangleSmoke(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(7, dir, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"validated on both runs",
		"Logical trace heatmap - 1D Cyclic",
		"Logical trace heatmap - 1D Range",
		"Quartile violin - 1D Cyclic",
		"Overall breakdown - 1D Range",
		"case-study observations:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, sub := range []string{"cyclic", "range"} {
		ents, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			t.Fatalf("trace dir %s: %v", sub, err)
		}
		if len(ents) == 0 {
			t.Errorf("trace dir %s is empty", sub)
		}
	}
}
