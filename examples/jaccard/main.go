// Jaccard: edge-neighborhood similarity as a two-phase FA-BSP actor
// program, the messaging pattern behind the paper's genome-comparison
// workload ("Asynchronous distributed actor-based approach to Jaccard
// similarity", one of the applications the authors profile with
// ActorProf).
//
// Phase one probes candidate edges exactly like triangle counting; a
// confirmed triangle triggers phase-two credit messages through the
// selector's second mailbox. The program validates the per-edge common
// counts against the triangle count, prints the most similar edges, and
// shows the overall profile of the two-phase exchange.
//
// Run:
//
//	go run ./examples/jaccard [-scale 10]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"sync"

	"actorprof/internal/actor"
	"actorprof/internal/apps"
	"actorprof/internal/core"
	"actorprof/internal/graph"
	"actorprof/internal/sim"
)

func main() {
	scale := flag.Int("scale", 10, "R-MAT scale")
	flag.Parse()
	if err := run(*scale, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(scale int, out io.Writer) error {
	g, err := graph.GenerateRMAT(graph.Graph500(scale, 16, 1234))
	if err != nil {
		return err
	}
	full := g.Symmetrize()
	const numPEs, perNode = 16, 8
	dist := graph.NewRangeDist(g, numPEs)

	type scored struct {
		u, v   int64
		common int64
		sim    float64
	}
	var all []scored
	var mu sync.Mutex
	var check int64

	set, err := core.Run(core.Options{
		Machine: sim.Machine{NumPEs: numPEs, PEsPerNode: perNode},
		Trace:   core.FullTrace(),
	}, func(rt *actor.Runtime) error {
		res, err := apps.Jaccard(rt, g, dist)
		if err != nil {
			return err
		}
		mu.Lock()
		if rt.PE().Rank() == 0 {
			check = res.TriangleCheck
		}
		for key, c := range res.Common {
			u, v := key>>32, key&0xffffffff
			s := apps.JaccardSimilarity(c, full.Degree(u), full.Degree(v))
			all = append(all, scored{u: u, v: v, common: c, sim: s})
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}

	want := g.CountTrianglesSerial()
	if check != want {
		return fmt.Errorf("triangle cross-check MISMATCH: got %d, want %d", check, want)
	}
	fmt.Fprintf(out, "graph: %d vertices, %d edges; triangle cross-check %d [VALIDATED]\n\n",
		g.NumVertices(), g.NumEdges(), check)

	sort.Slice(all, func(i, j int) bool { return all[i].sim > all[j].sim })
	fmt.Fprintln(out, "most similar neighborhoods (top 10 edges):")
	for i := 0; i < 10 && i < len(all); i++ {
		e := all[i]
		fmt.Fprintf(out, "  (%4d, %4d)  common=%3d  deg=%d/%d  J=%.3f\n",
			e.u, e.v, e.common, full.Degree(e.u), full.Degree(e.v), e.sim)
	}

	var tm, tc, tp, tt int64
	for _, r := range set.Overall {
		tm += r.TMain
		tc += r.TComm
		tp += r.TProc
		tt += r.TTotal
	}
	fmt.Fprintf(out, "\ntwo-phase exchange profile: MAIN %.1f%%  COMM %.1f%%  PROC %.1f%% (%d logical sends)\n",
		100*float64(tm)/float64(tt), 100*float64(tc)/float64(tt),
		100*float64(tp)/float64(tt), set.LogicalMatrix().Total())
	return nil
}
