package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestJaccardSmoke runs the two-phase Jaccard example at a tiny scale;
// run itself fails if the triangle cross-check mismatches.
func TestJaccardSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(7, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"[VALIDATED]",
		"most similar neighborhoods",
		"two-phase exchange profile",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
