package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestBFSSmoke runs the level-synchronous BFS example at a tiny scale.
func TestBFSSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(7, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"BFS from vertex 0: visited",
		"visit messages:",
		"overall: MAIN",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
