// BFS: level-synchronous breadth-first search as an FA-BSP actor
// program - one of the irregular workloads the paper's introduction
// motivates.
//
// Each BFS level is a finish scope: frontier vertices send visit
// messages to the owners of their neighbors; handlers mark newly
// discovered vertices. ActorProf traces the whole search, and the
// program prints the level histogram plus the per-level communication
// profile.
//
// Run:
//
//	go run ./examples/bfs [-scale 12]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"actorprof/internal/actor"
	"actorprof/internal/apps"
	"actorprof/internal/core"
	"actorprof/internal/graph"
	"actorprof/internal/sim"
	"actorprof/internal/trace"
)

func main() {
	scale := flag.Int("scale", 12, "R-MAT scale")
	flag.Parse()
	if err := run(*scale, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(scale int, out io.Writer) error {
	g, err := graph.GenerateRMAT(graph.Graph500(scale, 16, 7))
	if err != nil {
		return err
	}
	full := g.Symmetrize()
	const numPEs, perNode = 16, 8
	dist := graph.NewCyclicDist(numPEs)

	var depth int
	var visited int64
	set, err := core.Run(core.Options{
		Machine: sim.Machine{NumPEs: numPEs, PEsPerNode: perNode},
		Trace:   core.FullTrace(),
	}, func(rt *actor.Runtime) error {
		res, err := apps.BFS(rt, full, dist, 0)
		if err != nil {
			return err
		}
		if rt.PE().Rank() == 0 {
			depth = res.Depth
			visited = res.Visited
		}
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "BFS from vertex 0: visited %d of %d vertices in %d levels\n\n",
		visited, full.NumVertices(), depth)

	lm := set.LogicalMatrix()
	fmt.Fprintf(out, "visit messages: %d total; send imbalance (max/mean) %.2fx\n",
		lm.Total(), trace.MaxOverMean(lm.SendTotals()))
	var tm, tc, tp, tt int64
	for _, r := range set.Overall {
		tm += r.TMain
		tc += r.TComm
		tp += r.TProc
		tt += r.TTotal
	}
	fmt.Fprintf(out, "overall: MAIN %.1f%%  COMM %.1f%%  PROC %.1f%%\n",
		100*float64(tm)/float64(tt), 100*float64(tc)/float64(tt), 100*float64(tp)/float64(tt))
	fmt.Fprintln(out, "\n(level-synchronous BFS pays one BSP superstep per level; the COMM share")
	fmt.Fprintln(out, " includes the per-level termination and straggler wait - exactly what an")
	fmt.Fprintln(out, " FA-BSP-aware profiler should expose)")
	return nil
}
