package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartSmoke runs the Listing 1-2 program at a reduced message
// count and checks the two reports render.
func TestQuickstartSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(50, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"histogram mass: 400 (expected 400)",
		"Quickstart: logical trace",
		"Quickstart: overall breakdown (relative)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
