// Quickstart: the paper's Listing 1-2 program, end to end.
//
// Every PE allocates a local array, creates an actor, and sends N
// asynchronous increments to pseudo-random destinations; the message
// handler bumps the local array WITHOUT atomics, because the FA-BSP
// runtime executes each PE's handlers one at a time on the PE's own
// thread of control. ActorProf traces everything and the program
// finishes by printing the logical-trace heatmap and the overall
// MAIN/COMM/PROC breakdown.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"actorprof/internal/actor"
	"actorprof/internal/core"
	"actorprof/internal/shmem"
	"actorprof/internal/sim"
)

const (
	numPEs     = 8
	pesPerNode = 4
	nMessages  = 2000 // N in Listing 1
	tableSize  = 64
)

func main() {
	if err := run(nMessages, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(messages int, out io.Writer) error {
	set, err := core.Run(core.Options{
		Machine: sim.Machine{NumPEs: numPEs, PEsPerNode: pesPerNode},
		Trace:   core.FullTrace(),
	}, func(rt *actor.Runtime) error {
		pe := rt.PE()

		// Listing 1, line 2: each PE allocates a local array.
		larray := make([]int64, tableSize)

		// Listing 2: an actor whose handler increments larray. No
		// atomics on the increment - the runtime serializes handlers.
		myActor, err := actor.NewActor(rt, actor.Int64Codec())
		if err != nil {
			return err
		}
		myActor.Process(0, func(idx int64, senderRank int) {
			larray[idx]++
		})

		// Listing 1, lines 4-12: finish { start; N sends; done }.
		rt.Finish(func() {
			myActor.Start()
			rng := uint64(pe.Rank())*0x9e3779b97f4a7c15 + 0xdeadbeef
			for i := 0; i < messages; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				dst := int(rng>>33) % pe.NumPEs()
				idx := int64(rng>>13) % tableSize
				myActor.Send(0, idx, dst) // asynchronous SEND
			}
			myActor.Done(0)
		})

		// Sanity: global mass must equal the number of messages.
		var local int64
		for _, v := range larray {
			local += v
		}
		total := pe.AllReduceInt64(shmem.OpSum, local)
		if total != int64(numPEs*messages) {
			return fmt.Errorf("histogram mass %d, expected %d", total, numPEs*messages)
		}
		if pe.Rank() == 0 {
			fmt.Fprintf(out, "histogram mass: %d (expected %d)\n\n", total, numPEs*messages)
		}
		return nil
	})
	if err != nil {
		return err
	}

	// ActorProf reports.
	if err := core.LogicalHeatmap(set, "Quickstart: logical trace").RenderText(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return core.OverallStacked(set, true, "Quickstart: overall breakdown (relative)").RenderText(out)
}
