// Command isort runs the ISx-style bucketed integer sort - the
// batched-dispatch showcase - with ActorProf attached: every PE draws
// uniform keys, exchanges per-bucket counts, redistributes all keys to
// their bucket owners through ProcessBatch handlers, and sorts locally.
// The distributed result is validated against the sequential reference
// (placement is deterministic, so every bucket must match exactly), a
// summary prints, and the trace files land in -out, ready for the
// actorprof visualizer or actorprofd.
//
// Run:
//
//	go run ./examples/isort -out results/isort
//
//	-keys N        keys per PE (default 20000)
//	-pes N         number of PEs (default 16)
//	-per-node N    PEs per node (default 16)
//	-width N       bucket width per PE (default 1<<16)
//	-seed N        key-generation seed (default 42)
//	-buf N         conveyor buffer items (default 64)
//	-per-message   use per-message dispatch instead of batched
//	-out DIR       trace output directory (default actorprof_trace)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"actorprof/internal/actor"
	"actorprof/internal/apps"
	"actorprof/internal/core"
	"actorprof/internal/sim"
	"actorprof/internal/trace"
	"actorprof/internal/whatif"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "isort:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("isort", flag.ContinueOnError)
	var (
		keys       = fs.Int("keys", 20000, "keys per PE")
		pes        = fs.Int("pes", 16, "number of PEs")
		perNode    = fs.Int("per-node", 16, "PEs per node")
		width      = fs.Int64("width", 1<<16, "bucket width per PE")
		seed       = fs.Uint64("seed", 42, "key-generation seed")
		buf        = fs.Int("buf", 64, "conveyor aggregation buffer (items)")
		perMessage = fs.Bool("per-message", false, "use per-message dispatch instead of batched")
		outDir     = fs.String("out", "actorprof_trace", "trace output directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := apps.ISortConfig{
		KeysPerPE: *keys, BucketWidth: *width, Seed: *seed, PerMessage: *perMessage,
	}
	mode := "batched"
	if *perMessage {
		mode = "per-message"
	}
	fmt.Fprintf(out, "isort: %d keys/PE on %d PEs (%d node(s)), bucket width %d, %s dispatch\n",
		*keys, *pes, (*pes+*perNode-1)/(*perNode), *width, mode)

	results := make([]apps.ISortResult, *pes)
	set, sched, err := core.RunCaptured(core.Options{
		Machine:     sim.Machine{NumPEs: *pes, PEsPerNode: *perNode},
		Trace:       core.FullTrace(),
		BufferItems: *buf,
	}, func(rt *actor.Runtime) error {
		res, err := apps.ISort(rt, cfg)
		if err != nil {
			return err
		}
		results[rt.PE().Rank()] = res
		return nil
	})
	if err != nil {
		return err
	}

	// Validate every bucket exactly against the sequential reference.
	want := apps.ISortSerial(*pes, cfg)
	var sorted int64
	for pe, res := range results {
		if len(res.Keys) != len(want[pe]) {
			return fmt.Errorf("VALIDATION FAILED: PE %d bucket has %d keys, serial reference %d",
				pe, len(res.Keys), len(want[pe]))
		}
		for i, k := range res.Keys {
			if k != want[pe][i] {
				return fmt.Errorf("VALIDATION FAILED: PE %d key %d is %d, serial reference %d",
					pe, i, k, want[pe][i])
			}
		}
		sorted += res.Received
	}
	fmt.Fprintf(out, "sorted %d keys (validated against the sequential reference)\n", sorted)

	lm := set.LogicalMatrix()
	fmt.Fprintf(out, "logical trace: %d sends; per-PE send imbalance (max/mean) %.2fx\n",
		lm.Total(), trace.MaxOverMean(lm.SendTotals()))

	if err := set.WriteFiles(*outDir); err != nil {
		return err
	}
	if err := whatif.WriteScheduleFile(*outDir, sched); err != nil {
		return err
	}
	fmt.Fprintf(out, "trace files written to %s (render with: actorprof %s)\n", *outDir, *outDir)
	return nil
}
