package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestISortExampleSmoke runs the example at a reduced size in both
// dispatch modes and checks validation passes and trace files land.
func TestISortExampleSmoke(t *testing.T) {
	for _, mode := range []string{"batched", "per-message"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			args := []string{"-keys", "500", "-pes", "8", "-per-node", "4", "-width", "64", "-out", dir}
			if mode == "per-message" {
				args = append(args, "-per-message")
			}
			var out bytes.Buffer
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
			got := out.String()
			if !strings.Contains(got, "sorted 4000 keys (validated against the sequential reference)") {
				t.Errorf("output missing validation line:\n%s", got)
			}
			entries, err := os.ReadDir(dir)
			if err != nil || len(entries) == 0 {
				t.Fatalf("no trace files written to %s (err=%v)", dir, err)
			}
			if _, err := os.Stat(filepath.Join(dir, "schedule.json")); err != nil {
				t.Errorf("missing captured schedule: %v", err)
			}
		})
	}
}
