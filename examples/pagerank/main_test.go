package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestPageRankSmoke runs the distribution-comparison example at a tiny
// scale with few iterations.
func TestPageRankSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(7, 2, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"PageRank over",
		"1D Block",
		"1D Range",
		"rank mass",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
