// PageRank: actor-based synchronous PageRank - the third intro workload
// of the paper - with an ActorProf-guided distribution comparison.
//
// The program runs the same PageRank twice, under 1D Block and 1D Range
// partitioning, and uses the overall breakdown to show which
// distribution spends less time in the COMM regime: the kind of
// data-distribution experiment the paper's conclusion recommends
// ("ActorProf suggests experimenting with data-distributions as an
// opportunity for improvement").
//
// Run:
//
//	go run ./examples/pagerank [-scale 11] [-iters 5]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"actorprof/internal/actor"
	"actorprof/internal/apps"
	"actorprof/internal/core"
	"actorprof/internal/graph"
	"actorprof/internal/sim"
	"actorprof/internal/trace"
)

func main() {
	scale := flag.Int("scale", 11, "R-MAT scale")
	iters := flag.Int("iters", 5, "PageRank iterations")
	flag.Parse()
	if err := run(*scale, *iters, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(scale, iters int, out io.Writer) error {
	g, err := graph.GenerateRMAT(graph.Graph500(scale, 16, 99))
	if err != nil {
		return err
	}
	full := g.Symmetrize()
	const numPEs, perNode = 16, 16

	runOnce := func(dist graph.Distribution) (*trace.Set, float64, error) {
		var sum float64
		set, err := core.Run(core.Options{
			Machine: sim.Machine{NumPEs: numPEs, PEsPerNode: perNode},
			Trace:   core.FullTrace(),
		}, func(rt *actor.Runtime) error {
			res, err := apps.PageRank(rt, full, dist, apps.PageRankConfig{
				Damping: 0.85, Iterations: iters,
			})
			if err != nil {
				return err
			}
			if rt.PE().Rank() == 0 {
				sum = res.Sum
			}
			return nil
		})
		return set, sum, err
	}

	fmt.Fprintf(out, "PageRank over %d vertices, %d undirected edges, %d iterations\n\n",
		full.NumVertices(), g.NumEdges(), iters)

	for _, d := range []graph.Distribution{
		graph.NewBlockDist(full.NumVertices(), numPEs),
		graph.NewRangeDist(full, numPEs),
	} {
		set, sum, err := runOnce(d)
		if err != nil {
			return err
		}
		var tm, tc, tp, tt, wall int64
		for _, r := range set.Overall {
			tm += r.TMain
			tc += r.TComm
			tp += r.TProc
			tt += r.TTotal
			if r.TTotal > wall {
				wall = r.TTotal
			}
		}
		fmt.Fprintf(out, "%-10s rank mass %.6f | wall %12d cycles | MAIN %4.1f%% COMM %4.1f%% PROC %4.1f%% | send imb %.2fx\n",
			d.Name(), sum, wall,
			100*float64(tm)/float64(tt), 100*float64(tc)/float64(tt), 100*float64(tp)/float64(tt),
			trace.MaxOverMean(set.LogicalMatrix().SendTotals()))
	}
	fmt.Fprintln(out, "\n(1D Range balances edges - and therefore PageRank's contribution messages -")
	fmt.Fprintln(out, " so its straggler-bound COMM time shrinks; ActorProf makes that visible)")
	return nil
}
